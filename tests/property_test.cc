// Parameterized property-style sweeps over the library's core invariants
// (paper lemmas and theorem), exercised on randomized inputs.
#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/toprr.h"
#include "data/generator.h"
#include "geom/convex_hull.h"
#include "geom/lp.h"
#include "pref/pref_space.h"
#include "pref/region.h"
#include "topk/rskyband.h"
#include "topk/topk.h"

namespace toprr {
namespace {

// ---------------------------------------------------------------------
// Lemma 1: vertex score domination extends to the whole convex polytope.
// ---------------------------------------------------------------------

class Lemma1Property : public ::testing::TestWithParam<int> {};

TEST_P(Lemma1Property, VertexDominationImpliesRegionDomination) {
  const int seed = GetParam();
  Rng rng(seed);
  const size_t d = 2 + static_cast<size_t>(seed % 4);
  const Dataset ds = GenerateSynthetic(60, d, Distribution::kIndependent,
                                       seed);
  const PrefBox box = RandomPrefBox(d - 1, 0.08, rng);
  const std::vector<Vec> corners = box.Vertices();
  for (int pair = 0; pair < 40; ++pair) {
    const int a = static_cast<int>(rng.UniformInt(0, ds.size() - 1));
    const int b = static_cast<int>(rng.UniformInt(0, ds.size() - 1));
    if (a == b) continue;
    bool dominates_at_vertices = true;
    for (const Vec& v : corners) {
      if (ReducedScoreDiff(ds.Row(a), ds.Row(b), v) < 0.0) {
        dominates_at_vertices = false;
        break;
      }
    }
    if (!dominates_at_vertices) continue;
    // Lemma 1: then S_w(a) >= S_w(b) for every w in the box.
    for (int s = 0; s < 100; ++s) {
      Vec x(d - 1);
      for (size_t j = 0; j + 1 < d; ++j) {
        x[j] = rng.Uniform(box.lo[j], box.hi[j]);
      }
      EXPECT_GE(ReducedScoreDiff(ds.Row(a), ds.Row(b), x), -1e-12);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Lemma1Property, ::testing::Range(1, 9));

// ---------------------------------------------------------------------
// Lemma 3: the vertex kIPR test implies interior invariance.
// ---------------------------------------------------------------------

class Lemma3Property : public ::testing::TestWithParam<int> {};

TEST_P(Lemma3Property, VertexInvarianceImpliesInteriorInvariance) {
  const int seed = GetParam();
  Rng rng(seed * 7 + 1);
  const size_t d = 2 + static_cast<size_t>(seed % 3);
  const Dataset ds = GenerateSynthetic(120, d, Distribution::kIndependent,
                                       seed * 13);
  std::vector<int> ids(ds.size());
  for (size_t i = 0; i < ds.size(); ++i) ids[i] = static_cast<int>(i);
  const int k = 3 + seed % 4;
  // Try small random boxes until one passes the vertex kIPR test.
  for (int attempt = 0; attempt < 50; ++attempt) {
    const PrefBox box = RandomPrefBox(d - 1, 0.01, rng);
    const std::vector<Vec> corners = box.Vertices();
    std::vector<int> ref_set;
    int ref_kth = -1;
    bool invariant = true;
    for (size_t c = 0; c < corners.size(); ++c) {
      const TopkResult r = ComputeTopKReduced(ds, ids, corners[c], k);
      if (c == 0) {
        ref_set = r.IdSet();
        ref_kth = r.KthId();
      } else if (r.IdSet() != ref_set || r.KthId() != ref_kth) {
        invariant = false;
        break;
      }
    }
    if (!invariant) continue;
    // Interior points must agree (Lemma 3 "if" direction).
    for (int s = 0; s < 60; ++s) {
      Vec x(d - 1);
      for (size_t j = 0; j + 1 < d; ++j) {
        x[j] = rng.Uniform(box.lo[j], box.hi[j]);
      }
      const TopkResult r = ComputeTopKReduced(ds, ids, x, k);
      EXPECT_EQ(r.IdSet(), ref_set);
      EXPECT_EQ(r.KthId(), ref_kth);
    }
    return;  // one verified box per seed is enough
  }
  GTEST_SKIP() << "no kIPR box found for this seed (acceptable)";
}

INSTANTIATE_TEST_SUITE_P(Seeds, Lemma3Property, ::testing::Range(1, 9));

// ---------------------------------------------------------------------
// Lemma 5: removing a consistent top-lambda set and reducing k leaves the
// TopRR output unchanged.
// ---------------------------------------------------------------------

class Lemma5Property : public ::testing::TestWithParam<int> {};

TEST_P(Lemma5Property, PruningPreservesResultRegion) {
  const int seed = GetParam();
  Rng rng(seed * 31);
  const size_t d = 3;
  const Dataset ds = GenerateSynthetic(250, d, Distribution::kIndependent,
                                       seed * 37);
  const PrefBox box = RandomPrefBox(d - 1, 0.03, rng);
  const int k = 8;
  ToprrOptions with;
  with.use_lemma5 = true;
  ToprrOptions without;
  without.use_lemma5 = false;
  const ToprrResult a = SolveToprr(ds, k, box, with);
  const ToprrResult b = SolveToprr(ds, k, box, without);
  for (int trial = 0; trial < 800; ++trial) {
    Vec o(d);
    for (size_t j = 0; j < d; ++j) o[j] = rng.Uniform();
    double closest = 1e9;
    for (const Halfspace& h : a.impact_halfspaces) {
      closest = std::min(closest,
                         std::abs(h.Violation(o)) / h.normal.Norm());
    }
    for (const Halfspace& h : b.impact_halfspaces) {
      closest = std::min(closest,
                         std::abs(h.Violation(o)) / h.normal.Norm());
    }
    if (closest < 1e-6) continue;
    EXPECT_EQ(a.Contains(o), b.Contains(o)) << o.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Lemma5Property, ::testing::Range(1, 7));

// ---------------------------------------------------------------------
// Lemma 7: the optimized test yields the same region as full kIPR
// partitioning.
// ---------------------------------------------------------------------

class Lemma7Property : public ::testing::TestWithParam<int> {};

TEST_P(Lemma7Property, OptimizedTestingPreservesResultRegion) {
  const int seed = GetParam();
  Rng rng(seed * 41);
  const size_t d = 3;
  const Dataset ds = GenerateSynthetic(
      250, d, Distribution::kAnticorrelated, seed * 43);
  const PrefBox box = RandomPrefBox(d - 1, 0.03, rng);
  const int k = 6;
  ToprrOptions with;
  ToprrOptions without;
  without.use_lemma7 = false;
  const ToprrResult a = SolveToprr(ds, k, box, with);
  const ToprrResult b = SolveToprr(ds, k, box, without);
  for (int trial = 0; trial < 800; ++trial) {
    Vec o(d);
    for (size_t j = 0; j < d; ++j) o[j] = rng.Uniform();
    double closest = 1e9;
    for (const Halfspace& h : a.impact_halfspaces) {
      closest = std::min(closest,
                         std::abs(h.Violation(o)) / h.normal.Norm());
    }
    for (const Halfspace& h : b.impact_halfspaces) {
      closest = std::min(closest,
                         std::abs(h.Violation(o)) / h.normal.Norm());
    }
    if (closest < 1e-6) continue;
    EXPECT_EQ(a.Contains(o), b.Contains(o)) << o.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Lemma7Property, ::testing::Range(1, 7));

// ---------------------------------------------------------------------
// Region splitting: children partition the parent (no loss, no overlap
// beyond the cut plane).
// ---------------------------------------------------------------------

class SplitProperty : public ::testing::TestWithParam<int> {};

TEST_P(SplitProperty, ChildrenPartitionParent) {
  const int seed = GetParam();
  Rng rng(seed * 53);
  const size_t m = 1 + static_cast<size_t>(seed % 4);  // 1..4 dims
  const PrefBox box = RandomPrefBox(m, 0.2, rng);
  const PrefRegion region = PrefRegion::FromBox(box);
  // A plane through the centroid with a random normal always cuts.
  Vec n(m);
  for (size_t j = 0; j < m; ++j) n[j] = rng.Uniform(-1.0, 1.0);
  if (n.MaxAbs() < 0.1) n[0] = 1.0;
  const Hyperplane plane(n, Dot(n, region.Centroid()));
  const auto split = region.Split(plane);
  ASSERT_TRUE(split.below.has_value());
  ASSERT_TRUE(split.above.has_value());
  for (int trial = 0; trial < 400; ++trial) {
    Vec x(m);
    for (size_t j = 0; j < m; ++j) {
      x[j] = rng.Uniform(box.lo[j], box.hi[j]);
    }
    const double side = plane.Eval(x);
    if (std::abs(side) < 1e-9) continue;
    EXPECT_EQ(split.below->Contains(x, 1e-9), side < 0.0);
    EXPECT_EQ(split.above->Contains(x, 1e-9), side > 0.0);
  }
  // Vertices of children lie inside the parent.
  for (const PrefRegion* child : {&*split.below, &*split.above}) {
    for (const Vec& v : child->vertices()) {
      EXPECT_TRUE(region.Contains(v, 1e-8));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SplitProperty, ::testing::Range(1, 13));

// ---------------------------------------------------------------------
// Theorem 1 / result-region invariants on random instances.
// ---------------------------------------------------------------------

class ResultRegionProperty : public ::testing::TestWithParam<int> {};

TEST_P(ResultRegionProperty, VerticesSatisfyAllConstraints) {
  const int seed = GetParam();
  Rng rng(seed * 61);
  const size_t d = 2 + static_cast<size_t>(seed % 3);
  const Dataset ds = GenerateSynthetic(200, d, Distribution::kIndependent,
                                       seed * 67);
  const PrefBox box = RandomPrefBox(d - 1, 0.05, rng);
  const ToprrResult result = SolveToprr(ds, 5, box);
  ASSERT_FALSE(result.timed_out);
  if (result.degenerate) GTEST_SKIP() << "degenerate region";
  ASSERT_GE(result.vertices.size(), d);
  for (const Vec& v : result.vertices) {
    EXPECT_TRUE(result.Contains(v, 1e-6));
  }
  // Supporting halfspaces are a subset of all impact halfspaces and each
  // touches at least one vertex.
  for (size_t idx : result.supporting_halfspaces) {
    ASSERT_LT(idx, result.impact_halfspaces.size());
    const Halfspace& h = result.impact_halfspaces[idx];
    double closest = 1e9;
    for (const Vec& v : result.vertices) {
      closest = std::min(closest, std::abs(h.Violation(v)));
    }
    EXPECT_LT(closest, 1e-5);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ResultRegionProperty,
                         ::testing::Range(1, 10));

// ---------------------------------------------------------------------
// Filter safety: the r-skyband never changes the k-th score at any
// sampled weight vector in the region.
// ---------------------------------------------------------------------

class FilterProperty : public ::testing::TestWithParam<int> {};

TEST_P(FilterProperty, RSkybandPreservesKthScore) {
  const int seed = GetParam();
  Rng rng(seed * 71);
  const size_t d = 2 + static_cast<size_t>(seed % 4);
  const Dataset ds = GenerateSynthetic(
      400, d,
      seed % 2 == 0 ? Distribution::kIndependent
                    : Distribution::kAnticorrelated,
      seed * 73);
  const PrefBox box = RandomPrefBox(d - 1, 0.05, rng);
  const int k = 1 + seed % 10;
  const std::vector<int> rsky = RSkyband(ds, box, k);
  for (int s = 0; s < 50; ++s) {
    Vec x(d - 1);
    for (size_t j = 0; j + 1 < d; ++j) {
      x[j] = rng.Uniform(box.lo[j], box.hi[j]);
    }
    const TopkResult filtered = ComputeTopKReduced(ds, rsky, x, k);
    const TopkResult full = ComputeTopK(ds, FullWeight(x), k);
    EXPECT_NEAR(filtered.KthScore(), full.KthScore(), 1e-12);
    EXPECT_EQ(filtered.KthId(), full.KthId());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FilterProperty, ::testing::Range(1, 13));

}  // namespace
}  // namespace toprr
