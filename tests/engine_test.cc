#include "core/engine.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <thread>

#include "common/rng.h"
#include "data/generator.h"
#include "data/snapshot.h"
#include "topk/skyband.h"

namespace toprr {
namespace {

PrefBox Box(std::initializer_list<double> lo, std::initializer_list<double> hi) {
  PrefBox box;
  box.lo = Vec(lo);
  box.hi = Vec(hi);
  return box;
}

TEST(EngineTest, SkybandIsCachedAndCorrect) {
  const Dataset ds = GenerateSynthetic(2000, 3, Distribution::kIndependent,
                                       42);
  ToprrEngine engine(DatasetSnapshot::FromDataset(ds));
  const std::vector<int>& first = engine.KSkyband(5);
  EXPECT_EQ(first, SortBasedKSkyband(ds, 5));
  // Second call returns the same cached object.
  const std::vector<int>& second = engine.KSkyband(5);
  EXPECT_EQ(&first, &second);
  // Different k: different entry.
  const std::vector<int>& other = engine.KSkyband(2);
  EXPECT_NE(&first, &other);
}

TEST(EngineTest, SolveMatchesDirectSolve) {
  const Dataset ds = GenerateSynthetic(3000, 3, Distribution::kIndependent,
                                       43);
  ToprrEngine engine(DatasetSnapshot::FromDataset(ds));
  Rng rng(44);
  for (int trial = 0; trial < 4; ++trial) {
    const PrefBox box = RandomPrefBox(2, 0.03, rng);
    const int k = 3 + trial * 3;
    const ToprrResult via_engine = engine.Solve(k, box);
    const ToprrResult direct = SolveToprr(ds, k, box);
    ASSERT_FALSE(via_engine.timed_out);
    // Same candidate pool and same impact constraints.
    EXPECT_EQ(via_engine.stats.candidates_after_filter,
              direct.stats.candidates_after_filter);
    EXPECT_EQ(via_engine.impact_halfspaces.size(),
              direct.impact_halfspaces.size());
    // Membership agreement on random probes.
    for (int probe = 0; probe < 300; ++probe) {
      const Vec o{rng.Uniform(), rng.Uniform(), rng.Uniform()};
      EXPECT_EQ(via_engine.Contains(o), direct.Contains(o));
    }
  }
}

TEST(EngineTest, RepeatedQueriesFilterWithinSkyband) {
  // The per-query r-skyband scan over the cached skyband must produce the
  // same filter set as the full-dataset scan.
  const Dataset ds = GenerateSynthetic(5000, 4,
                                       Distribution::kAnticorrelated, 45);
  ToprrEngine engine(DatasetSnapshot::FromDataset(ds));
  Rng rng(46);
  const PrefBox box = RandomPrefBox(3, 0.02, rng);
  const ToprrResult a = engine.Solve(10, box);
  const ToprrResult b = SolveToprr(ds, 10, box);
  EXPECT_EQ(a.stats.candidates_after_filter,
            b.stats.candidates_after_filter);
}

TEST(EngineTest, PolytopeRegionOverload) {
  const Dataset ds = GenerateSynthetic(1000, 3, Distribution::kIndependent,
                                       47);
  ToprrEngine engine(DatasetSnapshot::FromDataset(ds));
  const PrefBox box = Box({0.2, 0.2}, {0.25, 0.25});
  const ToprrResult via_box = engine.Solve(5, box);
  const ToprrResult via_region = engine.Solve(5, PrefRegion::FromBox(box));
  EXPECT_EQ(via_box.impact_halfspaces.size(),
            via_region.impact_halfspaces.size());
}

void ExpectSameRegion(const ToprrResult& a, const ToprrResult& b) {
  ASSERT_EQ(a.timed_out, b.timed_out);
  ASSERT_EQ(a.impact_halfspaces.size(), b.impact_halfspaces.size());
  for (size_t i = 0; i < a.impact_halfspaces.size(); ++i) {
    EXPECT_EQ(a.impact_halfspaces[i].offset, b.impact_halfspaces[i].offset);
    for (size_t j = 0; j < a.impact_halfspaces[i].normal.dim(); ++j) {
      EXPECT_EQ(a.impact_halfspaces[i].normal[j],
                b.impact_halfspaces[i].normal[j]);
    }
  }
  ASSERT_EQ(a.vall.size(), b.vall.size());
  for (size_t i = 0; i < a.vall.size(); ++i) {
    for (size_t j = 0; j < a.vall[i].dim(); ++j) {
      EXPECT_EQ(a.vall[i][j], b.vall[i][j]);
    }
  }
}

TEST(EngineTest, SolveBatchMatchesIndividualSolves) {
  const Dataset ds = GenerateSynthetic(1500, 3, Distribution::kIndependent,
                                       49);
  ToprrEngine engine(DatasetSnapshot::FromDataset(ds));
  Rng rng(50);
  std::vector<ToprrQuery> queries;
  for (int i = 0; i < 12; ++i) {
    ToprrOptions options;
    if (i % 3 == 0) options.method = ToprrMethod::kTas;
    queries.push_back(
        ToprrQuery::FromBox(2 + i % 5, RandomPrefBox(2, 0.03, rng), options));
  }
  const std::vector<ToprrResult> batch = engine.SolveBatch(queries, 4);
  ASSERT_EQ(batch.size(), queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    const ToprrResult single = engine.Solve(queries[i]);
    SCOPED_TRACE(i);
    ExpectSameRegion(batch[i], single);
  }
}

TEST(EngineTest, SolveBatchSequentialAndParallelAgree) {
  const Dataset ds = GenerateSynthetic(1000, 4, Distribution::kCorrelated,
                                       51);
  ToprrEngine engine(DatasetSnapshot::FromDataset(ds));
  Rng rng(52);
  std::vector<ToprrQuery> queries;
  for (int i = 0; i < 8; ++i) {
    queries.push_back(
        ToprrQuery::FromBox(5, RandomPrefBox(3, 0.02, rng)));
  }
  const std::vector<ToprrResult> serial = engine.SolveBatch(queries, 1);
  const std::vector<ToprrResult> parallel = engine.SolveBatch(queries, 4);
  ASSERT_EQ(serial.size(), parallel.size());
  for (size_t i = 0; i < serial.size(); ++i) {
    SCOPED_TRACE(i);
    ExpectSameRegion(serial[i], parallel[i]);
  }
}

TEST(EngineTest, SolveBatchWithRegionLevelParallelismComposes) {
  // Query-level and region-level parallelism share one pool; both levels
  // active at once must stay correct (the pool saturates gracefully).
  const Dataset ds = GenerateSynthetic(800, 3, Distribution::kIndependent,
                                       53);
  ToprrEngine engine(DatasetSnapshot::FromDataset(ds));
  Rng rng(54);
  std::vector<ToprrQuery> queries;
  for (int i = 0; i < 6; ++i) {
    ToprrOptions options;
    options.num_threads = 2;  // region-level parallelism inside each query
    queries.push_back(
        ToprrQuery::FromBox(4, RandomPrefBox(2, 0.03, rng), options));
  }
  const std::vector<ToprrResult> batch = engine.SolveBatch(queries, 3);
  for (size_t i = 0; i < queries.size(); ++i) {
    ToprrQuery plain = queries[i];
    plain.options.num_threads = 1;
    const ToprrResult single = engine.Solve(plain);
    SCOPED_TRACE(i);
    ExpectSameRegion(batch[i], single);
  }
}

TEST(EngineTest, SolveBatchSurfacesSchedulerTelemetry) {
  // Each query of a batch carries its own executor telemetry; with
  // region-level parallelism requested the per-query stats must show the
  // requested worker-slot count and account every tested region, even
  // when the batch dispatch saturates the pool.
  const Dataset ds = GenerateSynthetic(900, 3, Distribution::kIndependent,
                                       58);
  ToprrEngine engine(DatasetSnapshot::FromDataset(ds));
  Rng rng(59);
  std::vector<ToprrQuery> queries;
  for (int i = 0; i < 5; ++i) {
    ToprrOptions options;
    options.num_threads = 2;
    queries.push_back(
        ToprrQuery::FromBox(4, RandomPrefBox(2, 0.03, rng), options));
  }
  const std::vector<ToprrResult> batch = engine.SolveBatch(queries, 2);
  for (size_t i = 0; i < batch.size(); ++i) {
    SCOPED_TRACE(i);
    ASSERT_FALSE(batch[i].timed_out);
    ASSERT_EQ(batch[i].stats.scheduler.workers.size(), 2u);
    EXPECT_EQ(batch[i].stats.scheduler.TotalExecuted(),
              batch[i].stats.regions_tested);
  }
}

TEST(EngineTest, SolveBatchEmpty) {
  const Dataset ds = GenerateSynthetic(100, 3, Distribution::kIndependent,
                                       55);
  ToprrEngine engine(DatasetSnapshot::FromDataset(ds));
  EXPECT_TRUE(engine.SolveBatch({}, 4).empty());
}

TEST(EngineTest, ConcurrentSolvesShareTheCache) {
  const Dataset ds = GenerateSynthetic(1200, 3, Distribution::kIndependent,
                                       56);
  ToprrEngine engine(DatasetSnapshot::FromDataset(ds));
  Rng rng(57);
  // Same k across all queries: every worker hits the same cache entry.
  std::vector<ToprrQuery> queries;
  for (int i = 0; i < 10; ++i) {
    queries.push_back(ToprrQuery::FromBox(6, RandomPrefBox(2, 0.02, rng)));
  }
  const std::vector<ToprrResult> batch = engine.SolveBatch(queries, 4);
  for (const ToprrResult& r : batch) {
    EXPECT_FALSE(r.timed_out);
    EXPECT_GT(r.stats.candidates_after_filter, 0u);
  }
  EXPECT_EQ(engine.KSkyband(6), SortBasedKSkyband(ds, 6));
}

TEST(EngineTest, SolveBatchMixedKBuildsSkybandsConcurrently) {
  // A batch mixing k values must not serialize behind the first query's
  // skyband build: every worker computes its own k's skyband outside the
  // cache lock (per-k once slots). Results must match the per-query
  // solves of a cold engine exactly, and every skyband must equal the
  // direct computation.
  const Dataset ds = GenerateSynthetic(2500, 3, Distribution::kAnticorrelated,
                                       58);
  ToprrEngine engine(DatasetSnapshot::FromDataset(ds));
  Rng rng(59);
  std::vector<ToprrQuery> queries;
  const int ks[] = {1, 3, 5, 8, 12, 3, 8, 1, 12, 5, 7, 2};
  for (int k : ks) {
    queries.push_back(ToprrQuery::FromBox(k, RandomPrefBox(2, 0.03, rng)));
  }
  const std::vector<ToprrResult> batch = engine.SolveBatch(queries, 4);
  ASSERT_EQ(batch.size(), queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    ASSERT_FALSE(batch[i].timed_out) << "query " << i;
    ToprrEngine cold(DatasetSnapshot::FromDataset(ds));
    const ToprrResult reference = cold.Solve(queries[i]);
    EXPECT_EQ(batch[i].impact_halfspaces.size(),
              reference.impact_halfspaces.size())
        << "query " << i;
    ASSERT_EQ(batch[i].vall.size(), reference.vall.size()) << "query " << i;
    for (size_t v = 0; v < batch[i].vall.size(); ++v) {
      EXPECT_EQ(batch[i].vall[v].raw(), reference.vall[v].raw())
          << "query " << i << " vall " << v;
    }
  }
  for (int k : {1, 2, 3, 5, 7, 8, 12}) {
    EXPECT_EQ(engine.KSkyband(k), SortBasedKSkyband(ds, k)) << "k=" << k;
  }
}

TEST(EngineTest, CancelFlagAbortsBothExecutors) {
  // A pre-set cancel flag must abort the solve at the scheduler's first
  // per-region poll, on the sequential and the work-stealing executor
  // alike, with both timed_out and cancelled set.
  const Dataset ds = GenerateSynthetic(2000, 3, Distribution::kIndependent,
                                       60);
  Rng rng(61);
  const PrefBox box = RandomPrefBox(2, 0.05, rng);
  std::atomic<bool> cancel{true};
  for (int threads : {1, 4}) {
    SCOPED_TRACE(threads);
    ToprrOptions options;
    options.num_threads = threads;
    options.cancel = &cancel;
    const ToprrResult result = SolveToprr(ds, 10, box, options);
    EXPECT_TRUE(result.timed_out);
    EXPECT_TRUE(result.cancelled);
  }
  // Budget expiry without cancellation keeps the two flags distinct.
  ToprrOptions budget_only;
  budget_only.time_budget_seconds = 1e-9;
  const ToprrResult budget = SolveToprr(ds, 10, box, budget_only);
  EXPECT_TRUE(budget.timed_out);
  EXPECT_FALSE(budget.cancelled);
}

TEST(EngineTest, SolveBatchCancelResolvesEveryQuery) {
  // With the batch-level cancel flag already set, SolveBatch must still
  // return one explicit cancelled result per query -- never hang and
  // never leave slots untouched.
  const Dataset ds = GenerateSynthetic(800, 3, Distribution::kIndependent,
                                       62);
  ToprrEngine engine(DatasetSnapshot::FromDataset(ds));
  Rng rng(63);
  std::vector<ToprrQuery> queries;
  for (int i = 0; i < 8; ++i) {
    queries.push_back(ToprrQuery::FromBox(4, RandomPrefBox(2, 0.03, rng)));
  }
  std::atomic<bool> cancel{true};
  const std::vector<ToprrResult> results =
      engine.SolveBatch(queries, 3, &cancel);
  ASSERT_EQ(results.size(), queries.size());
  for (const ToprrResult& result : results) {
    EXPECT_TRUE(result.timed_out);
    EXPECT_TRUE(result.cancelled);
  }
  // The same batch solves normally once the flag is clear.
  cancel.store(false);
  const std::vector<ToprrResult> solved =
      engine.SolveBatch(queries, 3, &cancel);
  for (const ToprrResult& result : solved) {
    EXPECT_FALSE(result.timed_out);
    EXPECT_FALSE(result.cancelled);
  }
}

TEST(EngineTest, RebindingAnEqualSnapshotKeepsTheSkyband) {
  // The post-shim form of the old InvalidateCache test: moving the
  // engine onto an independently built snapshot of the same content (a
  // fresh root, so no shared delta chain) must yield the same skyband.
  const Dataset ds = GenerateSynthetic(500, 3, Distribution::kIndependent,
                                       48);
  ToprrEngine engine(DatasetSnapshot::FromDataset(ds));
  const std::vector<int> copy = engine.KSkyband(3);
  engine.SetSnapshot(DatasetSnapshot::FromDataset(ds));
  const std::vector<int>& after = engine.KSkyband(3);
  EXPECT_EQ(copy, after);  // same dataset, same answer
}

TEST(EngineTest, IndependentSnapshotsOfEqualContentAgree) {
  const Dataset ds = GenerateSynthetic(1200, 3, Distribution::kIndependent,
                                       70);
  const SnapshotPtr snap = DatasetSnapshot::FromDataset(ds);
  ToprrEngine first(snap);
  ToprrEngine second(DatasetSnapshot::FromDataset(ds));
  // Independent snapshots of the same content hash to the same id.
  EXPECT_EQ(first.snapshot_id(), second.snapshot_id());
  EXPECT_EQ(first.snapshot_id(), DatasetContentHash(ds));
  EXPECT_EQ(first.dataset_rows(), ds.size());
  EXPECT_EQ(first.dataset_dim(), ds.dim());
  // Both are roots: publish sequence 1.
  EXPECT_EQ(first.snapshot_seq(), 1u);
  EXPECT_EQ(second.snapshot_seq(), 1u);
  Rng rng(71);
  const PrefBox box = RandomPrefBox(2, 0.03, rng);
  const ToprrResult a = first.Solve(5, box);
  const ToprrResult b = second.Solve(5, box);
  ExpectSameRegion(a, b);
  // Every engine solve stamps the snapshot it pinned.
  EXPECT_EQ(a.snapshot_id, snap->id());
  EXPECT_EQ(b.snapshot_id, snap->id());
  EXPECT_EQ(a.snapshot_seq, 1u);
}

TEST(EngineTest, SetSnapshotMaintainsSkybandIncrementally) {
  const Dataset ds = GenerateSynthetic(600, 3, Distribution::kIndependent,
                                       72);
  MutableCatalog catalog(ds);
  ToprrEngine engine(catalog.Current());
  const std::vector<int> base = engine.KSkyband(4);
  EXPECT_EQ(engine.update_counters().skyband_rebuilds, 1u);
  EXPECT_EQ(engine.update_counters().skyband_incremental, 0u);

  // Insert-only delta: the publish migrates the cached skyband
  // incrementally.
  Rng rng(73);
  for (int i = 0; i < 12; ++i) {
    Vec row(3);
    for (size_t j = 0; j < 3; ++j) row[j] = rng.Uniform();
    catalog.StageInsert(row);
  }
  const SnapshotPtr v2 = catalog.Publish();
  engine.SetSnapshot(v2);
  EXPECT_EQ(engine.update_counters().publishes_seen, 1u);
  EXPECT_EQ(engine.update_counters().skyband_incremental, 1u);
  EXPECT_EQ(engine.update_counters().skyband_rebuilds, 1u);
  EXPECT_EQ(engine.KSkyband(4),
            SortBasedKSkybandPool(v2->View(), v2->live_ids(), 4).ids);

  // Deleting a non-member is free (still incremental).
  const std::vector<int> members = engine.KSkyband(4);
  int non_member = -1;
  for (const int id : v2->live_ids()) {
    if (!std::binary_search(members.begin(), members.end(), id)) {
      non_member = id;
      break;
    }
  }
  ASSERT_GE(non_member, 0);
  catalog.StageDelete(non_member);
  const SnapshotPtr v3 = catalog.Publish();
  engine.SetSnapshot(v3);
  EXPECT_EQ(engine.update_counters().skyband_incremental, 2u);
  EXPECT_EQ(engine.update_counters().skyband_rebuilds, 1u);
  EXPECT_EQ(engine.KSkyband(4),
            SortBasedKSkybandPool(v3->View(), v3->live_ids(), 4).ids);

  // Deleting a member forces the rebuild path.
  catalog.StageDelete(engine.KSkyband(4).front());
  const SnapshotPtr v4 = catalog.Publish();
  engine.SetSnapshot(v4);
  EXPECT_EQ(engine.update_counters().skyband_incremental, 2u);
  EXPECT_EQ(engine.update_counters().skyband_rebuilds, 2u);
  EXPECT_EQ(engine.KSkyband(4),
            SortBasedKSkybandPool(v4->View(), v4->live_ids(), 4).ids);
}

TEST(EngineTest, ConcurrentPublishAndSolveBatchStress) {
  // A writer publishing snapshots while readers run SolveBatch: every
  // result must be bit-identical to a cold engine solving the same query
  // on the snapshot the result says it pinned. Run under TSan to verify
  // the no-shared-mutable-state claim.
  const Dataset ds = GenerateSynthetic(400, 3, Distribution::kIndependent,
                                       74);
  auto catalog = std::make_shared<MutableCatalog>(ds);
  ToprrEngine engine(catalog->Current());

  std::mutex versions_mu;
  std::map<uint64_t, SnapshotPtr> versions;
  versions[catalog->CurrentId()] = catalog->Current();

  Rng rng(75);
  std::vector<ToprrQuery> queries;
  for (int i = 0; i < 8; ++i) {
    queries.push_back(ToprrQuery::FromBox(5, RandomPrefBox(2, 0.03, rng)));
  }

  std::thread writer([&] {
    Rng wrng(76);
    for (int publish = 0; publish < 4; ++publish) {
      for (int i = 0; i < 5; ++i) {
        Vec row(3);
        for (size_t j = 0; j < 3; ++j) row[j] = wrng.Uniform();
        catalog->StageInsert(row);
      }
      // An occasional delete exercises both maintenance paths.
      catalog->StageDelete(static_cast<int>(
          wrng.UniformInt(0, static_cast<int>(ds.size()) - 1)));
      const SnapshotPtr next = catalog->Publish();
      {
        std::lock_guard<std::mutex> lock(versions_mu);
        versions[next->id()] = next;
      }
      engine.SetSnapshot(next);
    }
  });

  std::vector<std::vector<ToprrResult>> rounds;
  for (int round = 0; round < 3; ++round) {
    rounds.push_back(engine.SolveBatch(queries, 3));
  }
  writer.join();

  for (const std::vector<ToprrResult>& round : rounds) {
    ASSERT_EQ(round.size(), queries.size());
    for (size_t i = 0; i < round.size(); ++i) {
      SCOPED_TRACE(i);
      ASSERT_FALSE(round[i].timed_out);
      const auto it = versions.find(round[i].snapshot_id);
      ASSERT_NE(it, versions.end())
          << "result pinned an unknown snapshot version";
      ToprrEngine cold(it->second);
      ExpectSameRegion(round[i], cold.Solve(queries[i]));
    }
  }
}

TEST(EngineTest, EngineConfigPresets) {
  const ToprrOptions production = EngineConfig::Production();
  EXPECT_TRUE(production.use_score_kernel);
  EXPECT_TRUE(production.use_flat_geometry);
  EXPECT_TRUE(production.use_region_cache);
  EXPECT_EQ(production.method, ToprrMethod::kTasStar);

  const ToprrOptions legacy = EngineConfig::LegacyReference();
  EXPECT_FALSE(legacy.use_score_kernel);
  EXPECT_FALSE(legacy.use_flat_geometry);
  EXPECT_FALSE(legacy.use_region_cache);

  // The two presets are bit-identical end to end (the regression suites'
  // core claim, re-asserted here at the preset level).
  const Dataset ds = GenerateSynthetic(800, 3, Distribution::kIndependent,
                                       77);
  ToprrEngine engine(DatasetSnapshot::FromDataset(ds));
  Rng rng(78);
  const PrefBox box = RandomPrefBox(2, 0.03, rng);
  ExpectSameRegion(engine.Solve(5, box, production),
                   engine.Solve(5, box, legacy));
}

}  // namespace
}  // namespace toprr
