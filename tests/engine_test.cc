#include "core/engine.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "data/generator.h"
#include "topk/skyband.h"

namespace toprr {
namespace {

PrefBox Box(std::initializer_list<double> lo, std::initializer_list<double> hi) {
  PrefBox box;
  box.lo = Vec(lo);
  box.hi = Vec(hi);
  return box;
}

TEST(EngineTest, SkybandIsCachedAndCorrect) {
  const Dataset ds = GenerateSynthetic(2000, 3, Distribution::kIndependent,
                                       42);
  ToprrEngine engine(&ds);
  const std::vector<int>& first = engine.KSkyband(5);
  EXPECT_EQ(first, SortBasedKSkyband(ds, 5));
  // Second call returns the same cached object.
  const std::vector<int>& second = engine.KSkyband(5);
  EXPECT_EQ(&first, &second);
  // Different k: different entry.
  const std::vector<int>& other = engine.KSkyband(2);
  EXPECT_NE(&first, &other);
}

TEST(EngineTest, SolveMatchesDirectSolve) {
  const Dataset ds = GenerateSynthetic(3000, 3, Distribution::kIndependent,
                                       43);
  ToprrEngine engine(&ds);
  Rng rng(44);
  for (int trial = 0; trial < 4; ++trial) {
    const PrefBox box = RandomPrefBox(2, 0.03, rng);
    const int k = 3 + trial * 3;
    const ToprrResult via_engine = engine.Solve(k, box);
    const ToprrResult direct = SolveToprr(ds, k, box);
    ASSERT_FALSE(via_engine.timed_out);
    // Same candidate pool and same impact constraints.
    EXPECT_EQ(via_engine.stats.candidates_after_filter,
              direct.stats.candidates_after_filter);
    EXPECT_EQ(via_engine.impact_halfspaces.size(),
              direct.impact_halfspaces.size());
    // Membership agreement on random probes.
    for (int probe = 0; probe < 300; ++probe) {
      const Vec o{rng.Uniform(), rng.Uniform(), rng.Uniform()};
      EXPECT_EQ(via_engine.Contains(o), direct.Contains(o));
    }
  }
}

TEST(EngineTest, RepeatedQueriesFilterWithinSkyband) {
  // The per-query r-skyband scan over the cached skyband must produce the
  // same filter set as the full-dataset scan.
  const Dataset ds = GenerateSynthetic(5000, 4,
                                       Distribution::kAnticorrelated, 45);
  ToprrEngine engine(&ds);
  Rng rng(46);
  const PrefBox box = RandomPrefBox(3, 0.02, rng);
  const ToprrResult a = engine.Solve(10, box);
  const ToprrResult b = SolveToprr(ds, 10, box);
  EXPECT_EQ(a.stats.candidates_after_filter,
            b.stats.candidates_after_filter);
}

TEST(EngineTest, PolytopeRegionOverload) {
  const Dataset ds = GenerateSynthetic(1000, 3, Distribution::kIndependent,
                                       47);
  ToprrEngine engine(&ds);
  const PrefBox box = Box({0.2, 0.2}, {0.25, 0.25});
  const ToprrResult via_box = engine.Solve(5, box);
  const ToprrResult via_region = engine.Solve(5, PrefRegion::FromBox(box));
  EXPECT_EQ(via_box.impact_halfspaces.size(),
            via_region.impact_halfspaces.size());
}

TEST(EngineTest, InvalidateCacheRecomputes) {
  const Dataset ds = GenerateSynthetic(500, 3, Distribution::kIndependent,
                                       48);
  ToprrEngine engine(&ds);
  const std::vector<int>* before = &engine.KSkyband(3);
  const std::vector<int> copy = *before;
  engine.InvalidateCache();
  const std::vector<int>& after = engine.KSkyband(3);
  EXPECT_EQ(copy, after);  // same dataset, same answer
}

}  // namespace
}  // namespace toprr
