// Bit-identical contract of the SoA scoring kernel (topk/score_kernel.h):
// kernel output must equal the naive per-vertex scan exactly -- at the
// kernel level (TopKInto vs ComputeTopKReduced), at the solver level
// (use_score_kernel on vs off across TAS/TAS*/PAC, dims, and k), and
// under parent-to-child score reuse -- plus the arena's steady-state
// zero-allocation guarantee.
#include "topk/score_kernel.h"

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "common/rng.h"
#include "core/toprr.h"
#include "data/generator.h"
#include "pref/pref_space.h"
#include "topk/rskyband.h"
#include "topk/topk.h"

namespace toprr {
namespace {

std::vector<int> AllIds(const Dataset& ds) {
  std::vector<int> ids(ds.size());
  std::iota(ids.begin(), ids.end(), 0);
  return ids;
}

// Region-vertex stand-ins: the corners of a random preference box.
std::vector<Vec> RandomVertices(size_t m, double sigma, Rng& rng) {
  return RandomPrefBox(m, sigma, rng).Vertices();
}

// Exact equality of a kernel profile and the naive reference.
void ExpectSameTopk(const TopkResult& kernel, const TopkResult& naive) {
  ASSERT_EQ(kernel.entries.size(), naive.entries.size());
  for (size_t i = 0; i < kernel.entries.size(); ++i) {
    EXPECT_EQ(kernel.entries[i].id, naive.entries[i].id) << i;
    EXPECT_EQ(kernel.entries[i].score, naive.entries[i].score) << i;
  }
}

// Runs the kernel over (data, ids, vertices, k) and checks every vertex's
// top-k against ComputeTopKReduced, bit for bit.
void CheckKernelAgainstNaive(const Dataset& data,
                             const std::vector<int>& ids,
                             const std::vector<Vec>& vertices, int k,
                             const VertexScoreCache* reuse = nullptr) {
  ScoreArena arena;
  ScoreKernel kernel(arena);
  kernel.LoadBlock(data, ids);
  kernel.ScoreVertices(vertices, reuse);
  std::vector<TopkResult>& profiles = arena.Profiles(vertices.size());
  for (size_t v = 0; v < vertices.size(); ++v) {
    kernel.TopKInto(v, k, profiles[v]);
    const TopkResult naive = ComputeTopKReduced(data, ids, vertices[v], k);
    SCOPED_TRACE("vertex " + std::to_string(v));
    ExpectSameTopk(profiles[v], naive);
  }
}

TEST(ScoreKernelTest, MatchesNaiveAcrossDimsAndK) {
  Rng rng(4001);
  for (size_t d : {2u, 3u, 4u, 5u}) {
    const Dataset ds =
        GenerateSynthetic(300, d, Distribution::kAnticorrelated, 900 + d);
    const std::vector<int> ids = AllIds(ds);
    const std::vector<Vec> vertices = RandomVertices(d - 1, 0.05, rng);
    for (int k : {1, 5, 10}) {
      SCOPED_TRACE("d=" + std::to_string(d) + " k=" + std::to_string(k));
      CheckKernelAgainstNaive(ds, ids, vertices, k);
    }
  }
}

TEST(ScoreKernelTest, MatchesNaiveOnSparsePools) {
  // Non-contiguous ascending pools exercise the gather indirection.
  const Dataset ds =
      GenerateSynthetic(500, 4, Distribution::kIndependent, 911);
  Rng rng(4002);
  std::vector<int> ids;
  for (int i = 3; i < 500; i += 7) ids.push_back(i);
  const std::vector<Vec> vertices = RandomVertices(3, 0.04, rng);
  for (int k : {1, 5, 10}) {
    CheckKernelAgainstNaive(ds, ids, vertices, k);
  }
}

TEST(ScoreKernelTest, EdgeCases) {
  const Dataset ds = GenerateSynthetic(40, 3, Distribution::kCorrelated, 77);
  Rng rng(4003);
  const std::vector<Vec> vertices = RandomVertices(2, 0.06, rng);

  // A single candidate.
  CheckKernelAgainstNaive(ds, {17}, vertices, 1);
  // Fewer candidates than k: the profile holds the whole pool.
  CheckKernelAgainstNaive(ds, {2, 9, 31}, vertices, 10);
  // Pool size exactly k.
  CheckKernelAgainstNaive(ds, {1, 4, 8, 22, 39}, vertices, 5);
  // An empty reuse mask (cache whose vertices match nothing) must be a
  // silent no-op.
  VertexScoreCache unrelated;
  unrelated.dim = 2;
  unrelated.coords = {0.9, 0.9};
  unrelated.candidates = {2, 9, 31};
  unrelated.rows = {1.0, 2.0, 3.0};
  CheckKernelAgainstNaive(ds, {2, 9, 31}, vertices, 2, &unrelated);
}

TEST(ScoreKernelTest, ParentToChildReuseIsExact) {
  const Dataset ds =
      GenerateSynthetic(200, 4, Distribution::kAnticorrelated, 78);
  Rng rng(4004);
  const std::vector<int> ids = AllIds(ds);
  const std::vector<Vec> parents = RandomVertices(3, 0.05, rng);

  // Parent pass over the full pool; memoize a Lemma-5-style survivor
  // subset (every third candidate).
  ScoreArena parent_arena;
  ScoreKernel parent(parent_arena);
  parent.LoadBlock(ds, ids);
  parent.ScoreVertices(parents, nullptr);
  std::vector<int> surviving;
  for (size_t i = 0; i < ids.size(); i += 3) surviving.push_back(ids[i]);
  const std::shared_ptr<const VertexScoreCache> cache =
      parent.MakeCache(parents, surviving);

  // Child: half inherited vertices (bitwise equal), half new ones.
  std::vector<Vec> child_vertices(parents.begin(),
                                  parents.begin() + parents.size() / 2);
  const std::vector<Vec> fresh = RandomVertices(3, 0.03, rng);
  child_vertices.insert(child_vertices.end(), fresh.begin(), fresh.end());

  ScoreArena child_arena;
  ScoreKernel child(child_arena);
  child.LoadBlock(ds, surviving);
  child.ScoreVertices(child_vertices, cache.get());
  EXPECT_EQ(child_arena.counters().reuse_hits, parents.size() / 2);

  std::vector<TopkResult>& profiles =
      child_arena.Profiles(child_vertices.size());
  for (size_t v = 0; v < child_vertices.size(); ++v) {
    child.TopKInto(v, 8, profiles[v]);
    const TopkResult naive =
        ComputeTopKReduced(ds, surviving, child_vertices[v], 8);
    SCOPED_TRACE("child vertex " + std::to_string(v));
    ExpectSameTopk(profiles[v], naive);
  }
}

TEST(ScoreKernelTest, SteadyStateMakesNoAllocations) {
  // The acceptance criterion of the arena design: once buffers are warm,
  // scoring a same-shaped region performs zero heap allocations (growth
  // events are counted by the arena).
  const Dataset ds =
      GenerateSynthetic(600, 4, Distribution::kIndependent, 79);
  Rng rng(4005);
  const std::vector<int> ids = AllIds(ds);
  const std::vector<Vec> vertices = RandomVertices(3, 0.05, rng);

  ScoreArena arena;
  const auto run = [&]() {
    ScoreKernel kernel(arena);
    kernel.LoadBlock(ds, ids);
    kernel.ScoreVertices(vertices, nullptr);
    std::vector<TopkResult>& profiles = arena.Profiles(vertices.size());
    for (size_t v = 0; v < vertices.size(); ++v) {
      kernel.TopKInto(v, 10, profiles[v]);
    }
  };
  run();
  const uint64_t warm = arena.counters().arena_allocations;
  EXPECT_GT(warm, 0u);  // the first pass did grow the buffers
  for (int repeat = 0; repeat < 5; ++repeat) run();
  EXPECT_EQ(arena.counters().arena_allocations, warm)
      << "steady-state region scoring must not allocate";
  // Smaller pools and vertex sets must ride the warmed buffers too.
  ScoreKernel kernel(arena);
  const std::vector<int> subset(ids.begin(), ids.begin() + 50);
  kernel.LoadBlock(ds, subset);
  kernel.ScoreVertices(vertices, nullptr);
  std::vector<TopkResult>& profiles = arena.Profiles(2);
  kernel.TopKInto(0, 5, profiles[0]);
  kernel.TopKInto(1, 5, profiles[1]);
  EXPECT_EQ(arena.counters().arena_allocations, warm);
}

TEST(ScoreKernelTest, RankOfMatchesRankOfOption) {
  const Dataset ds =
      GenerateSynthetic(150, 3, Distribution::kIndependent, 81);
  Rng rng(4006);
  const std::vector<int> ids = AllIds(ds);
  const std::vector<Vec> vertices = RandomVertices(2, 0.08, rng);

  ScoreArena arena;
  ScoreKernel kernel(arena);
  kernel.LoadBlock(ds, ids);
  kernel.ScoreVertices(vertices, nullptr);
  for (size_t v = 0; v < vertices.size(); ++v) {
    for (int id : {0, 7, 42, 149}) {
      EXPECT_EQ(kernel.RankOf(v, id),
                RankOfOption(ds, ids, vertices[v], id))
          << "v=" << v << " id=" << id;
      EXPECT_EQ(RankFromScores(ids, kernel.Scores(v), id),
                RankOfOption(ds, ids, vertices[v], id));
    }
  }
}

// ---- Solver-level regression matrix: kernel vs naive scoring path. ----

void ExpectSameVecs(const std::vector<Vec>& a, const std::vector<Vec>& b,
                    const char* what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].dim(), b[i].dim()) << what << "[" << i << "]";
    for (size_t j = 0; j < a[i].dim(); ++j) {
      EXPECT_EQ(a[i][j], b[i][j]) << what << "[" << i << "][" << j << "]";
    }
  }
}

void ExpectSameHalfspaces(const std::vector<Halfspace>& a,
                          const std::vector<Halfspace>& b,
                          const char* what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].offset, b[i].offset) << what << "[" << i << "]";
    ASSERT_EQ(a[i].normal.dim(), b[i].normal.dim()) << what;
    for (size_t j = 0; j < a[i].normal.dim(); ++j) {
      EXPECT_EQ(a[i].normal[j], b[i].normal[j])
          << what << "[" << i << "][" << j << "]";
    }
  }
}

void ExpectIdenticalResults(const ToprrResult& kernel,
                            const ToprrResult& naive) {
  ASSERT_EQ(kernel.timed_out, naive.timed_out);
  EXPECT_EQ(kernel.degenerate, naive.degenerate);
  ExpectSameHalfspaces(kernel.impact_halfspaces, naive.impact_halfspaces,
                       "impact_halfspaces");
  ExpectSameVecs(kernel.vall, naive.vall, "vall");
  ExpectSameVecs(kernel.vertices, naive.vertices, "vertices");
  EXPECT_EQ(kernel.stats.regions_tested, naive.stats.regions_tested);
  EXPECT_EQ(kernel.stats.regions_accepted, naive.stats.regions_accepted);
  EXPECT_EQ(kernel.stats.regions_split, naive.stats.regions_split);
  EXPECT_EQ(kernel.stats.kipr_accepts, naive.stats.kipr_accepts);
  EXPECT_EQ(kernel.stats.lemma7_accepts, naive.stats.lemma7_accepts);
  EXPECT_EQ(kernel.stats.lemma5_prunes, naive.stats.lemma5_prunes);
  EXPECT_EQ(kernel.stats.vall_raw, naive.stats.vall_raw);
  EXPECT_EQ(kernel.stats.vall_unique, naive.stats.vall_unique);
}

TEST(ScoreKernelTest, SolverMatrixKernelVsNaiveAcrossMethodsDimsAndK) {
  const ToprrMethod methods[] = {ToprrMethod::kTas, ToprrMethod::kTasStar,
                                 ToprrMethod::kPac};
  Rng rng(4007);
  for (size_t d : {2u, 3u, 4u, 5u}) {
    const size_t n = d == 5 ? 120 : 250;
    const Dataset ds =
        GenerateSynthetic(n, d, Distribution::kIndependent, 500 + d);
    const PrefBox box = RandomPrefBox(d - 1, 0.04, rng);
    for (int k : {1, 5, 10}) {
      for (ToprrMethod method : methods) {
        ToprrOptions with_kernel;
        with_kernel.method = method;
        ToprrOptions naive = with_kernel;
        naive.use_score_kernel = false;
        const ToprrResult a = SolveToprr(ds, k, box, with_kernel);
        const ToprrResult b = SolveToprr(ds, k, box, naive);
        ASSERT_FALSE(b.timed_out)
            << ToprrMethodName(method) << " d=" << d << " k=" << k;
        SCOPED_TRACE(std::string(ToprrMethodName(method)) + " d=" +
                     std::to_string(d) + " k=" + std::to_string(k));
        ExpectIdenticalResults(a, b);
        // The naive path reports no kernel activity; the kernel path
        // accounts one gather per tested region.
        EXPECT_EQ(b.stats.scheduler.TotalCandidatesScored(), 0u);
        EXPECT_GT(a.stats.scheduler.TotalCandidatesScored(), 0u);
      }
    }
  }
}

TEST(ScoreKernelTest, KernelCountersDeterministicAcrossExecutors) {
  // The kernel counter totals are pure functions of the region tree, so
  // sequential and parallel runs must report identical totals (the
  // per-worker breakdown is timing-dependent, the sums are not).
  const Dataset ds =
      GenerateSynthetic(1500, 3, Distribution::kAnticorrelated, 83);
  PrefBox box;
  box.lo = Vec{0.28, 0.30};
  box.hi = Vec{0.36, 0.38};
  ToprrOptions seq_options;
  seq_options.num_threads = 1;
  ToprrOptions par_options;
  par_options.num_threads = 4;
  const ToprrResult seq = SolveToprr(ds, 10, box, seq_options);
  const ToprrResult par = SolveToprr(ds, 10, box, par_options);
  ASSERT_FALSE(seq.timed_out);
  ASSERT_GT(seq.stats.regions_split, 0u);  // reuse needs actual splits
  EXPECT_EQ(seq.stats.scheduler.TotalCandidatesScored(),
            par.stats.scheduler.TotalCandidatesScored());
  EXPECT_EQ(seq.stats.scheduler.TotalGatherBytes(),
            par.stats.scheduler.TotalGatherBytes());
  EXPECT_EQ(seq.stats.scheduler.TotalReuseHits(),
            par.stats.scheduler.TotalReuseHits());
  // Splitting shares every surviving vertex with a child, so a tree with
  // splits must see memoization hits.
  EXPECT_GT(seq.stats.scheduler.TotalReuseHits(), 0u);
}

}  // namespace
}  // namespace toprr
