#include "core/impact.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "data/generator.h"
#include "topk/topk.h"

namespace toprr {
namespace {

Dataset PaperFigure1Dataset() {
  return Dataset::FromRows({
      Vec{0.9, 0.4}, Vec{0.7, 0.9}, Vec{0.6, 0.2},
      Vec{0.3, 0.8}, Vec{0.2, 0.3}, Vec{0.1, 0.1},
  });
}

PrefBox Interval(double lo, double hi) {
  PrefBox box;
  box.lo = Vec{lo};
  box.hi = Vec{hi};
  return box;
}

bool Covered(const std::vector<PrefRegion>& cells, const Vec& x) {
  for (const PrefRegion& cell : cells) {
    if (cell.Contains(x, 1e-9)) return true;
  }
  return false;
}

TEST(ImpactRegionsTest, PaperExampleP4) {
  // p4 (id 3) is in the top-3 exactly for w in [0.2, 2/3] (Fig. 1d).
  const Dataset ds = PaperFigure1Dataset();
  const auto result = ComputeImpactRegions(ds, 3, 3, Interval(0.2, 0.8));
  ASSERT_FALSE(result.timed_out);
  ASSERT_FALSE(result.favorable.empty());
  EXPECT_TRUE(Covered(result.favorable, Vec{0.3}));
  EXPECT_TRUE(Covered(result.favorable, Vec{0.6}));
  EXPECT_FALSE(Covered(result.favorable, Vec{0.7}));
  EXPECT_FALSE(Covered(result.favorable, Vec{0.79}));
}

TEST(ImpactRegionsTest, PaperExampleP3) {
  // p3 (id 2) enters the top-3 only for w in [2/3, 0.8].
  const Dataset ds = PaperFigure1Dataset();
  const auto result = ComputeImpactRegions(ds, 2, 3, Interval(0.2, 0.8));
  EXPECT_FALSE(Covered(result.favorable, Vec{0.5}));
  EXPECT_TRUE(Covered(result.favorable, Vec{0.7}));
}

TEST(ImpactRegionsTest, AlwaysTopOptionCoversEverything) {
  const Dataset ds = PaperFigure1Dataset();
  // p2 (id 1) is in the top-3 across all of [0.2, 0.8].
  const auto result = ComputeImpactRegions(ds, 1, 3, Interval(0.2, 0.8));
  EXPECT_DOUBLE_EQ(result.cell_fraction, 1.0);
  for (int s = 0; s <= 50; ++s) {
    const Vec x{0.2 + 0.6 * s / 50.0};
    EXPECT_TRUE(Covered(result.favorable, x));
  }
}

TEST(ImpactRegionsTest, HopelessOptionCoversNothing) {
  const Dataset ds = PaperFigure1Dataset();
  const auto result = ComputeImpactRegions(ds, 5, 3, Interval(0.2, 0.8));
  EXPECT_TRUE(result.favorable.empty());
  EXPECT_DOUBLE_EQ(result.cell_fraction, 0.0);
}

TEST(ImpactRegionsTest, VolumeFractionsOnPaperExample) {
  // Fig. 1(d): over wR = [0.2, 0.8] (length 0.6), p4 is top-3 on
  // [0.2, 2/3] (fraction 7/9) and p3 on [2/3, 0.8] (fraction 2/9).
  const Dataset ds = PaperFigure1Dataset();
  const auto p4 = ComputeImpactRegions(ds, 3, 3, Interval(0.2, 0.8));
  EXPECT_NEAR(p4.volume_fraction, (2.0 / 3.0 - 0.2) / 0.6, 1e-9);
  const auto p3 = ComputeImpactRegions(ds, 2, 3, Interval(0.2, 0.8));
  EXPECT_NEAR(p3.volume_fraction, (0.8 - 2.0 / 3.0) / 0.6, 1e-9);
  const auto p2 = ComputeImpactRegions(ds, 1, 3, Interval(0.2, 0.8));
  EXPECT_NEAR(p2.volume_fraction, 1.0, 1e-9);
  const auto p6 = ComputeImpactRegions(ds, 5, 3, Interval(0.2, 0.8));
  EXPECT_DOUBLE_EQ(p6.volume_fraction, 0.0);
}

TEST(ImpactRegionsTest, VolumeFractionMatchesSampling3D) {
  const Dataset ds = GenerateSynthetic(200, 3, Distribution::kIndependent,
                                       95);
  PrefBox box;
  box.lo = Vec{0.2, 0.25};
  box.hi = Vec{0.3, 0.35};
  const int k = 4;
  std::vector<int> all_ids(ds.size());
  for (size_t i = 0; i < ds.size(); ++i) all_ids[i] = static_cast<int>(i);
  const int target = ComputeTopKReduced(ds, all_ids, box.Center(), k).KthId();
  const auto impact = ComputeImpactRegions(ds, target, k, box);
  // Monte-Carlo estimate of the favorable fraction.
  Rng rng(96);
  int inside = 0;
  const int samples = 4000;
  for (int s = 0; s < samples; ++s) {
    Vec x(2);
    for (size_t j = 0; j < 2; ++j) {
      x[j] = rng.Uniform(box.lo[j], box.hi[j]);
    }
    const TopkResult topk = ComputeTopKReduced(ds, all_ids, x, k);
    const auto set = topk.IdSet();
    if (std::binary_search(set.begin(), set.end(), target)) ++inside;
  }
  const double sampled = static_cast<double>(inside) / samples;
  EXPECT_NEAR(impact.volume_fraction, sampled, 0.05);
}

TEST(ImpactRegionsTest, MatchesSampledMembership2D) {
  // 3-attribute data: favorable cells must agree with direct top-k
  // membership at sampled preference points.
  const Dataset ds = GenerateSynthetic(300, 3, Distribution::kIndependent,
                                       90);
  PrefBox box;
  box.lo = Vec{0.25, 0.25};
  box.hi = Vec{0.31, 0.31};
  const int k = 5;
  std::vector<int> all_ids(ds.size());
  for (size_t i = 0; i < ds.size(); ++i) all_ids[i] = static_cast<int>(i);
  // Pick an option that is sometimes (not always) in the top-k: the k-th
  // option at the box center.
  const Vec center = box.Center();
  const int target = ComputeTopKReduced(ds, all_ids, center, k).KthId();
  const auto result = ComputeImpactRegions(ds, target, k, box);
  ASSERT_FALSE(result.timed_out);
  Rng rng(91);
  int mismatches = 0;
  for (int s = 0; s < 300; ++s) {
    Vec x(2);
    for (size_t j = 0; j < 2; ++j) {
      x[j] = rng.Uniform(box.lo[j], box.hi[j]);
    }
    const TopkResult topk = ComputeTopKReduced(ds, all_ids, x, k);
    const bool in_topk =
        std::binary_search(topk.IdSet().begin(), topk.IdSet().end(), target);
    // Points on cell boundaries can disagree within tolerance; require a
    // clear score margin before judging.
    const double kth = topk.KthScore();
    const double target_score = ReducedScore(ds.Row(target), x);
    if (std::abs(target_score - kth) < 1e-9 && !in_topk) continue;
    if (Covered(result.favorable, x) != in_topk) ++mismatches;
  }
  EXPECT_EQ(mismatches, 0);
}

}  // namespace
}  // namespace toprr
