#include "core/rank_analysis.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "data/generator.h"
#include "topk/topk.h"

namespace toprr {
namespace {

Dataset PaperFigure1Dataset() {
  return Dataset::FromRows({
      Vec{0.9, 0.4}, Vec{0.7, 0.9}, Vec{0.6, 0.2},
      Vec{0.3, 0.8}, Vec{0.2, 0.3}, Vec{0.1, 0.1},
  });
}

PrefBox Interval(double lo, double hi) {
  PrefBox box;
  box.lo = Vec{lo};
  box.hi = Vec{hi};
  return box;
}

TEST(RankAnalysisTest, PaperExampleBestRanks) {
  const Dataset ds = PaperFigure1Dataset();
  const PrefBox wr = Interval(0.2, 0.8);
  // p2 tops the ranking for most of [0.2, 0.8] -> best rank 1.
  EXPECT_EQ(BestAchievableRank(ds, 1, wr, 6), 1);
  // p1 reaches rank 1 for speed-heavy weights (> 5/7).
  EXPECT_EQ(BestAchievableRank(ds, 0, wr, 6), 1);
  // p4 reaches rank 2 (just below p2 for battery-heavy weights).
  EXPECT_EQ(BestAchievableRank(ds, 3, wr, 6), 2);
  // p3 peaks at rank 3 (enters top-3 near w = 0.8).
  EXPECT_EQ(BestAchievableRank(ds, 2, wr, 6), 3);
  // p6 is always last.
  EXPECT_EQ(BestAchievableRank(ds, 5, wr, 6), 6);
  // ... and outside the top-5 everywhere.
  EXPECT_FALSE(BestAchievableRank(ds, 5, wr, 5).has_value());
}

TEST(RankAnalysisTest, PaperExampleGuaranteedRanks) {
  const Dataset ds = PaperFigure1Dataset();
  const PrefBox wr = Interval(0.2, 0.8);
  // p2 is top-2 everywhere in [0.2, 0.8] but not top-1 (p1 wins at 0.8).
  EXPECT_EQ(GuaranteedRank(ds, 1, wr, 6), 2);
  // p1 is in the top-3 everywhere (3rd place at battery-leaning weights).
  EXPECT_EQ(GuaranteedRank(ds, 0, wr, 6), 3);
  // p4 drops out of the top-3 at speed-heavy weights; guaranteed rank 4.
  EXPECT_EQ(GuaranteedRank(ds, 3, wr, 6), 4);
  // p6 only when k covers the whole dataset.
  EXPECT_EQ(GuaranteedRank(ds, 5, wr, 6), 6);
}

TEST(RankAnalysisTest, GuaranteedAtLeastBest) {
  const Dataset ds = GenerateSynthetic(150, 3, Distribution::kIndependent,
                                       600);
  PrefBox box;
  box.lo = Vec{0.25, 0.25};
  box.hi = Vec{0.3, 0.3};
  Rng rng(601);
  for (int trial = 0; trial < 8; ++trial) {
    const int option = static_cast<int>(rng.UniformInt(0, ds.size() - 1));
    const auto best = BestAchievableRank(ds, option, box, 30);
    const auto guaranteed = GuaranteedRank(ds, option, box, 30);
    if (guaranteed.has_value()) {
      ASSERT_TRUE(best.has_value());
      EXPECT_LE(*best, *guaranteed);
    }
  }
}

TEST(RankAnalysisTest, MatchesSampledRanks) {
  const Dataset ds = GenerateSynthetic(200, 3, Distribution::kIndependent,
                                       602);
  PrefBox box;
  box.lo = Vec{0.3, 0.25};
  box.hi = Vec{0.34, 0.29};
  std::vector<int> ids(ds.size());
  for (size_t i = 0; i < ds.size(); ++i) ids[i] = static_cast<int>(i);
  Rng rng(603);
  for (int trial = 0; trial < 5; ++trial) {
    const int option = static_cast<int>(rng.UniformInt(0, ds.size() - 1));
    // Sampled min/max rank over the box (approximation of best/worst).
    int sampled_best = static_cast<int>(ds.size());
    int sampled_worst = 1;
    for (int s = 0; s < 200; ++s) {
      Vec x(2);
      for (size_t j = 0; j < 2; ++j) {
        x[j] = rng.Uniform(box.lo[j], box.hi[j]);
      }
      const int rank = RankOfOption(ds, ids, x, option);
      sampled_best = std::min(sampled_best, rank);
      sampled_worst = std::max(sampled_worst, rank);
    }
    const auto best = BestAchievableRank(ds, option, box, ds.size());
    const auto guaranteed = GuaranteedRank(ds, option, box, ds.size());
    ASSERT_TRUE(best.has_value());
    ASSERT_TRUE(guaranteed.has_value());
    // Exact best <= sampled best; exact guaranteed >= sampled worst.
    EXPECT_LE(*best, sampled_best);
    EXPECT_GE(*guaranteed, sampled_worst);
    // And sampling can't be better than exact by much on a tiny box:
    EXPECT_GE(sampled_best, *best);
  }
}

}  // namespace
}  // namespace toprr
