// Bit-identical contract of the flat-geometry region engine
// (pref/flat_region.h): FlatRegion::Split must equal PrefRegion::Split
// exactly -- vertices, facet halfspaces, and incident-vertex ids, in the
// same order -- region by region (boxes, diagonal/on-plane cuts, fuzzed
// split chains like geometry_property_test's) and through the whole
// solver (use_flat_geometry on vs off across TAS/TAS*/PAC, dims, and k),
// plus the GeomArena's steady-state zero-allocation guarantee and the
// determinism of the new scheduler counters.
#include "pref/flat_region.h"

#include <gtest/gtest.h>

#include <optional>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/toprr.h"
#include "data/generator.h"
#include "pref/pref_space.h"
#include "pref/region.h"

namespace toprr {
namespace {

// Exact (bitwise) equality of a FlatRegion and a PrefRegion.
void ExpectSameRegion(const FlatRegion& flat, const PrefRegion& legacy) {
  ASSERT_EQ(flat.dim(), legacy.dim());
  const size_t m = flat.dim();
  ASSERT_EQ(flat.num_vertices(), legacy.vertices().size());
  for (size_t v = 0; v < flat.num_vertices(); ++v) {
    const double* row = flat.vertex(v);
    for (size_t j = 0; j < m; ++j) {
      EXPECT_EQ(row[j], legacy.vertices()[v][j])
          << "vertex " << v << " coord " << j;
    }
  }
  ASSERT_EQ(flat.num_facets(), legacy.facets().size());
  for (size_t f = 0; f < flat.num_facets(); ++f) {
    const RegionFacet& facet = legacy.facets()[f];
    const double* plane = flat.facet_plane(f);
    for (size_t j = 0; j < m; ++j) {
      EXPECT_EQ(plane[j], facet.halfspace.normal[j])
          << "facet " << f << " normal " << j;
    }
    EXPECT_EQ(flat.facet_offset(f), facet.halfspace.offset) << "facet " << f;
    ASSERT_EQ(flat.facet_size(f), facet.vertex_ids.size()) << "facet " << f;
    for (size_t i = 0; i < flat.facet_size(f); ++i) {
      EXPECT_EQ(flat.facet_ids(f)[i], facet.vertex_ids[i])
          << "facet " << f << " id " << i;
    }
  }
}

// Splits the same polytope through both engines and checks the children
// match bitwise. Returns the flat children for chaining.
void ExpectSameSplit(const FlatRegion& flat, const PrefRegion& legacy,
                     const Hyperplane& plane, GeomArena& arena,
                     std::optional<FlatRegion>* below_out = nullptr,
                     std::optional<FlatRegion>* above_out = nullptr) {
  std::optional<FlatRegion> below;
  std::optional<FlatRegion> above;
  flat.Split(plane, 1e-10, arena, &below, &above);
  const PrefRegionSplit reference = legacy.Split(plane);
  ASSERT_EQ(below.has_value(), reference.below.has_value());
  ASSERT_EQ(above.has_value(), reference.above.has_value());
  if (below.has_value()) {
    SCOPED_TRACE("below child");
    ExpectSameRegion(*below, *reference.below);
  }
  if (above.has_value()) {
    SCOPED_TRACE("above child");
    ExpectSameRegion(*above, *reference.above);
  }
  if (below_out != nullptr) *below_out = std::move(below);
  if (above_out != nullptr) *above_out = std::move(above);
}

TEST(FlatRegionTest, ConversionRoundTripIsExact) {
  Rng rng(7001);
  for (size_t m : {1u, 2u, 3u, 4u, 5u}) {
    const PrefBox box = RandomPrefBox(m, 0.2, rng);
    const PrefRegion legacy = PrefRegion::FromBox(box);
    const FlatRegion flat = FlatRegion::FromBox(box);
    SCOPED_TRACE("m=" + std::to_string(m));
    ExpectSameRegion(flat, legacy);
    // And back: the round-tripped PrefRegion splits identically.
    ExpectSameRegion(FlatRegion::FromRegion(flat.ToRegion()), legacy);
    EXPECT_EQ(flat.Centroid().raw(), legacy.Centroid().raw());
    EXPECT_TRUE(flat.Contains(legacy.Centroid()));
  }
}

TEST(FlatRegionTest, SplitMatchesLegacyOnBoxes) {
  Rng rng(7002);
  for (size_t m : {1u, 2u, 3u, 4u, 5u}) {
    GeomArena arena;
    for (int trial = 0; trial < 20; ++trial) {
      const PrefBox box = RandomPrefBox(m, 0.15, rng);
      const PrefRegion legacy = PrefRegion::FromBox(box);
      const FlatRegion flat = FlatRegion::FromBox(box);
      Vec normal(m);
      for (size_t j = 0; j < m; ++j) normal[j] = rng.Uniform(-1.0, 1.0);
      if (normal.MaxAbs() < 0.2) normal[0] = 1.0;
      const Hyperplane plane(normal, Dot(normal, legacy.Centroid()));
      SCOPED_TRACE("m=" + std::to_string(m) + " trial=" +
                   std::to_string(trial));
      ExpectSameSplit(flat, legacy, plane, arena);
    }
  }
}

TEST(FlatRegionTest, SplitMatchesLegacyOnDegenerateCuts) {
  GeomArena arena;
  PrefBox box;
  box.lo = Vec{0.0, 0.0};
  box.hi = Vec{0.4, 0.4};
  const PrefRegion legacy = PrefRegion::FromBox(box);
  const FlatRegion flat = FlatRegion::FromBox(box);
  // Diagonal through two corners: on-plane vertices join both children.
  ExpectSameSplit(flat, legacy, Hyperplane(Vec{1.0, -1.0}, 0.0), arena);
  // Non-cutting plane: one absent child.
  ExpectSameSplit(flat, legacy, Hyperplane(Vec{1.0, 0.0}, 0.9), arena);
  // Plane grazing an edge within eps: kOn vertices merge, not duplicate.
  ExpectSameSplit(flat, legacy, Hyperplane(Vec{1.0, 0.0}, 0.4), arena);
  // Axis cut producing new vertices on two facets.
  ExpectSameSplit(flat, legacy, Hyperplane(Vec{0.0, 1.0}, 0.1), arena);
}

TEST(FlatRegionTest, FuzzedSplitChainsStayBitIdentical) {
  // The geometry_property_test fuzz shape: chase a chain of random
  // centroid splits, keeping flat and legacy representations in
  // lockstep and comparing every split's full output along the way.
  for (int seed = 1; seed <= 12; ++seed) {
    Rng rng(seed * 211);
    const size_t m = 2 + static_cast<size_t>(seed % 4);
    const PrefBox box = RandomPrefBox(m, 0.2, rng);
    PrefRegion legacy = PrefRegion::FromBox(box);
    FlatRegion flat = FlatRegion::FromBox(box);
    GeomArena arena;
    for (int round = 0; round < 6; ++round) {
      Vec normal(m);
      for (size_t j = 0; j < m; ++j) normal[j] = rng.Uniform(-1.0, 1.0);
      if (normal.MaxAbs() < 0.2) continue;
      const Hyperplane plane(normal, Dot(normal, legacy.Centroid()));
      SCOPED_TRACE("seed=" + std::to_string(seed) + " round=" +
                   std::to_string(round));
      std::optional<FlatRegion> below;
      std::optional<FlatRegion> above;
      ExpectSameSplit(flat, legacy, plane, arena, &below, &above);
      const PrefRegionSplit reference = legacy.Split(plane);
      if (!below.has_value() || !above.has_value()) continue;
      const bool keep_below = rng.Uniform() < 0.5;
      flat = keep_below ? std::move(*below) : std::move(*above);
      legacy = keep_below ? std::move(*reference.below)
                          : std::move(*reference.above);
    }
  }
}

TEST(FlatRegionTest, SteadyStateSplitGrowsNoArenaScratch) {
  // The acceptance criterion of the GeomArena design: once scratch is
  // warm, splitting same-shaped (or smaller) regions performs zero
  // scratch growth, mirroring score_kernel_test's ScoreArena assertion.
  Rng rng(7003);
  const PrefBox box = RandomPrefBox(4, 0.2, rng);
  const FlatRegion flat = FlatRegion::FromBox(box);
  Vec normal{0.4, -0.7, 0.2, 0.6};
  const Hyperplane plane(normal, Dot(normal, flat.Centroid()));
  GeomArena arena;
  std::optional<FlatRegion> below;
  std::optional<FlatRegion> above;
  const auto run = [&]() {
    flat.Split(plane, 1e-10, arena, &below, &above);
    ASSERT_TRUE(below.has_value());
    ASSERT_TRUE(above.has_value());
    // Smaller regions (the children) must ride the warmed scratch too.
    std::optional<FlatRegion> grand_below;
    std::optional<FlatRegion> grand_above;
    Vec n2{0.3, 0.5, -0.4, 0.2};
    below->Split(Hyperplane(n2, Dot(n2, below->Centroid())), 1e-10, arena,
                 &grand_below, &grand_above);
  };
  run();
  const uint64_t warm = arena.counters().geom_arena_allocations;
  EXPECT_GT(warm, 0u);  // the first pass did grow the scratch
  for (int repeat = 0; repeat < 5; ++repeat) run();
  EXPECT_EQ(arena.counters().geom_arena_allocations, warm)
      << "steady-state flat splits must not grow arena scratch";
  EXPECT_GT(arena.counters().split_vertices_classified, 0u);
}

// ---- Solver-level regression matrix: flat vs legacy geometry path. ----

void ExpectSameVecs(const std::vector<Vec>& a, const std::vector<Vec>& b,
                    const char* what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].dim(), b[i].dim()) << what << "[" << i << "]";
    for (size_t j = 0; j < a[i].dim(); ++j) {
      EXPECT_EQ(a[i][j], b[i][j]) << what << "[" << i << "][" << j << "]";
    }
  }
}

void ExpectSameHalfspaces(const std::vector<Halfspace>& a,
                          const std::vector<Halfspace>& b,
                          const char* what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].offset, b[i].offset) << what << "[" << i << "]";
    ASSERT_EQ(a[i].normal.dim(), b[i].normal.dim()) << what;
    for (size_t j = 0; j < a[i].normal.dim(); ++j) {
      EXPECT_EQ(a[i].normal[j], b[i].normal[j])
          << what << "[" << i << "][" << j << "]";
    }
  }
}

void ExpectIdenticalResults(const ToprrResult& flat,
                            const ToprrResult& legacy) {
  ASSERT_EQ(flat.timed_out, legacy.timed_out);
  EXPECT_EQ(flat.degenerate, legacy.degenerate);
  ExpectSameHalfspaces(flat.impact_halfspaces, legacy.impact_halfspaces,
                       "impact_halfspaces");
  ExpectSameVecs(flat.vall, legacy.vall, "vall");
  ExpectSameVecs(flat.vertices, legacy.vertices, "vertices");
  EXPECT_EQ(flat.stats.regions_tested, legacy.stats.regions_tested);
  EXPECT_EQ(flat.stats.regions_accepted, legacy.stats.regions_accepted);
  EXPECT_EQ(flat.stats.regions_split, legacy.stats.regions_split);
  EXPECT_EQ(flat.stats.kipr_accepts, legacy.stats.kipr_accepts);
  EXPECT_EQ(flat.stats.lemma7_accepts, legacy.stats.lemma7_accepts);
  EXPECT_EQ(flat.stats.lemma5_prunes, legacy.stats.lemma5_prunes);
  EXPECT_EQ(flat.stats.vall_raw, legacy.stats.vall_raw);
  EXPECT_EQ(flat.stats.vall_unique, legacy.stats.vall_unique);
}

TEST(FlatGeometryTest, SolverMatrixFlatVsLegacyAcrossMethodsDimsAndK) {
  const ToprrMethod methods[] = {ToprrMethod::kTas, ToprrMethod::kTasStar,
                                 ToprrMethod::kPac};
  Rng rng(7007);
  for (size_t d : {2u, 3u, 4u, 5u}) {
    const size_t n = d == 5 ? 120 : 250;
    const Dataset ds =
        GenerateSynthetic(n, d, Distribution::kIndependent, 700 + d);
    const PrefBox box = RandomPrefBox(d - 1, 0.04, rng);
    for (int k : {1, 5, 10}) {
      for (ToprrMethod method : methods) {
        ToprrOptions with_flat;
        with_flat.method = method;
        ToprrOptions legacy = with_flat;
        legacy.use_flat_geometry = false;
        const ToprrResult a = SolveToprr(ds, k, box, with_flat);
        const ToprrResult b = SolveToprr(ds, k, box, legacy);
        ASSERT_FALSE(b.timed_out)
            << ToprrMethodName(method) << " d=" << d << " k=" << k;
        SCOPED_TRACE(std::string(ToprrMethodName(method)) + " d=" +
                     std::to_string(d) + " k=" + std::to_string(k));
        ExpectIdenticalResults(a, b);
        // The legacy path reports no flat-split activity; the flat path
        // classifies vertices whenever splits happened.
        EXPECT_EQ(b.stats.scheduler.TotalSplitVerticesClassified(), 0u);
        if (a.stats.regions_split > 0) {
          EXPECT_GT(a.stats.scheduler.TotalSplitVerticesClassified(), 0u);
        }
      }
    }
  }
}

TEST(FlatGeometryTest, GeomCountersDeterministicAcrossExecutors) {
  // split_vertices_classified totals are pure functions of the region
  // tree, so sequential and parallel runs must agree (the per-worker
  // breakdown is timing-dependent, the sums are not).
  const Dataset ds =
      GenerateSynthetic(1500, 3, Distribution::kAnticorrelated, 703);
  PrefBox box;
  box.lo = Vec{0.28, 0.30};
  box.hi = Vec{0.36, 0.38};
  ToprrOptions seq_options;
  seq_options.num_threads = 1;
  ToprrOptions par_options;
  par_options.num_threads = 4;
  const ToprrResult seq = SolveToprr(ds, 10, box, seq_options);
  const ToprrResult par = SolveToprr(ds, 10, box, par_options);
  ASSERT_FALSE(seq.timed_out);
  ASSERT_GT(seq.stats.regions_split, 0u);
  EXPECT_EQ(seq.stats.scheduler.TotalSplitVerticesClassified(),
            par.stats.scheduler.TotalSplitVerticesClassified());
  EXPECT_GT(seq.stats.scheduler.TotalSplitVerticesClassified(), 0u);
}

}  // namespace
}  // namespace toprr
