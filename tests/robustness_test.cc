// Failure-injection and robustness tests: budgets, caps, degenerate and
// adversarial inputs, determinism, and CHECK death tests.
#include <cmath>

#include <gtest/gtest.h>

#include "common/check.h"
#include "common/rng.h"
#include "core/placement.h"
#include "core/toprr.h"
#include "data/generator.h"
#include "topk/topk.h"

namespace toprr {
namespace {

PrefBox Box2(double lo0, double lo1, double hi0, double hi1) {
  PrefBox box;
  box.lo = Vec{lo0, lo1};
  box.hi = Vec{hi0, hi1};
  return box;
}

TEST(RobustnessTest, TimeBudgetProducesCleanTimeout) {
  const Dataset ds = GenerateSynthetic(5000, 5,
                                       Distribution::kAnticorrelated, 500);
  PrefBox box;
  box.lo = Vec(4, 0.15);
  box.hi = Vec(4, 0.22);
  ToprrOptions options;
  options.time_budget_seconds = 1e-5;
  const ToprrResult r = SolveToprr(ds, 20, box, options);
  EXPECT_TRUE(r.timed_out);
  EXPECT_TRUE(r.impact_halfspaces.empty());
}

TEST(RobustnessTest, RegionCapProducesCleanTimeout) {
  const Dataset ds = GenerateSynthetic(3000, 4,
                                       Distribution::kAnticorrelated, 501);
  PrefBox box;
  box.lo = Vec(3, 0.1);
  box.hi = Vec(3, 0.25);
  ToprrOptions options;
  options.max_regions = 3;
  const ToprrResult r = SolveToprr(ds, 20, box, options);
  EXPECT_TRUE(r.timed_out);
}

TEST(RobustnessTest, SolverIsDeterministic) {
  const Dataset ds = GenerateSynthetic(800, 3,
                                       Distribution::kAnticorrelated, 502);
  const PrefBox box = Box2(0.2, 0.22, 0.27, 0.29);
  const ToprrResult a = SolveToprr(ds, 7, box);
  const ToprrResult b = SolveToprr(ds, 7, box);
  ASSERT_EQ(a.impact_halfspaces.size(), b.impact_halfspaces.size());
  for (size_t i = 0; i < a.impact_halfspaces.size(); ++i) {
    EXPECT_TRUE(ApproxEqual(a.impact_halfspaces[i].normal,
                            b.impact_halfspaces[i].normal, 0.0));
    EXPECT_DOUBLE_EQ(a.impact_halfspaces[i].offset,
                     b.impact_halfspaces[i].offset);
  }
  ASSERT_EQ(a.vall.size(), b.vall.size());
}

TEST(RobustnessTest, DuplicateHeavyDataset) {
  // Many exact duplicates: tie-handling must neither crash nor loop.
  Dataset ds;
  Rng rng(503);
  for (int i = 0; i < 50; ++i) {
    const Vec p{rng.Uniform(), rng.Uniform(), rng.Uniform()};
    for (int copies = 0; copies < 4; ++copies) ds.Append(p);
  }
  PrefBox box;
  box.lo = Vec{0.2, 0.3};
  box.hi = Vec{0.28, 0.38};
  const ToprrResult r = SolveToprr(ds, 6, box);
  ASSERT_FALSE(r.timed_out);
  EXPECT_TRUE(r.Contains(Vec(3, 1.0)));
  // The duplicated k-th option itself must sit on the region boundary: it
  // scores exactly TopK at some vertex.
  EXPECT_GT(r.impact_halfspaces.size(), 0u);
}

TEST(RobustnessTest, QuantizedAttributeTies) {
  // All attributes on a coarse grid: massive score ties everywhere.
  Dataset ds;
  Rng rng(504);
  for (int i = 0; i < 300; ++i) {
    Vec p(3);
    for (size_t j = 0; j < 3; ++j) {
      p[j] = std::round(rng.Uniform() * 4.0) / 4.0;
    }
    ds.Append(p);
  }
  PrefBox box;
  box.lo = Vec{0.25, 0.25};
  box.hi = Vec{0.35, 0.35};
  const ToprrResult r = SolveToprr(ds, 5, box);
  ASSERT_FALSE(r.timed_out);
  // Soundness spot-check against sampled ground truth.
  std::vector<int> ids(ds.size());
  for (size_t i = 0; i < ds.size(); ++i) ids[i] = static_cast<int>(i);
  for (int trial = 0; trial < 100; ++trial) {
    Vec o(3);
    for (size_t j = 0; j < 3; ++j) o[j] = rng.Uniform(0.8, 1.0);
    if (!r.Contains(o)) continue;
    for (int s = 0; s < 30; ++s) {
      Vec x(2);
      for (size_t j = 0; j < 2; ++j) {
        x[j] = rng.Uniform(box.lo[j], box.hi[j]);
      }
      const TopkResult topk = ComputeTopKReduced(ds, ids, x, 5);
      EXPECT_GE(ReducedScore(o.data(), x), topk.KthScore() - 1e-9);
    }
  }
}

TEST(RobustnessTest, SingleCandidatePool) {
  // k equal to a tiny dataset: the partitioner accepts immediately.
  const Dataset ds = Dataset::FromRows(
      {Vec{0.5, 0.5}, Vec{0.6, 0.4}, Vec{0.4, 0.6}});
  PrefBox box;
  box.lo = Vec{0.4};
  box.hi = Vec{0.6};
  const ToprrResult r = SolveToprr(ds, 3, box);
  ASSERT_FALSE(r.timed_out);
  EXPECT_TRUE(r.Contains(Vec{1.0, 1.0}));
}

TEST(RobustnessTest, TinyPreferenceBox) {
  // A nearly point-sized wR behaves like a single-vector reverse top-k.
  const Dataset ds = GenerateSynthetic(500, 3, Distribution::kIndependent,
                                       505);
  PrefBox box;
  box.lo = Vec{0.3, 0.3};
  box.hi = Vec{0.3 + 1e-9, 0.3 + 1e-9};
  const ToprrResult r = SolveToprr(ds, 5, box);
  ASSERT_FALSE(r.timed_out);
  // With an effectively unique weight vector the region is bounded by a
  // single distinct impact halfspace (plus the box).
  EXPECT_LE(r.impact_halfspaces.size(), 4u);
}

TEST(RobustnessTest, ExtremeWeightsCornerBox) {
  // wR hugging the simplex corner (w[0] ~ 1).
  const Dataset ds = GenerateSynthetic(500, 3, Distribution::kIndependent,
                                       506);
  PrefBox box;
  box.lo = Vec{0.93, 0.01};
  box.hi = Vec{0.97, 0.02};
  const ToprrResult r = SolveToprr(ds, 3, box);
  ASSERT_FALSE(r.timed_out);
  EXPECT_TRUE(r.Contains(Vec(3, 1.0)));
}

TEST(RobustnessCheckDeathTest, InvalidArgumentsAreRejected) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  const Dataset ds = GenerateSynthetic(50, 3, Distribution::kIndependent,
                                       507);
  PrefBox box;
  box.lo = Vec{0.2, 0.2};
  box.hi = Vec{0.3, 0.3};
  EXPECT_DEATH(SolveToprr(ds, 0, box), "CHECK failed");
  EXPECT_DEATH(SolveToprr(ds, 51, box), "CHECK failed");
  PrefBox wrong_dim;
  wrong_dim.lo = Vec{0.2};
  wrong_dim.hi = Vec{0.3};
  EXPECT_DEATH(SolveToprr(ds, 3, wrong_dim), "CHECK failed");
}

TEST(RobustnessTest, PlacementOnDegenerateRegion) {
  // Option pinned at the top corner makes oR degenerate for k=1; the
  // placement QP must cope (projection onto a lower-dimensional set).
  Dataset ds = GenerateSynthetic(50, 2, Distribution::kIndependent, 508);
  ds.Append(Vec{1.0, 1.0});
  PrefBox box;
  box.lo = Vec{0.4};
  box.hi = Vec{0.5};
  const ToprrResult r = SolveToprr(ds, 1, box);
  EXPECT_TRUE(r.degenerate);
  const PlacementResult p = MinimumModification(r, Vec{0.5, 0.5});
  if (p.ok) {
    // The only feasible placements score >= 1 everywhere; the top corner
    // qualifies.
    EXPECT_NEAR(p.option[0], 1.0, 1e-5);
    EXPECT_NEAR(p.option[1], 1.0, 1e-5);
  }
}

}  // namespace
}  // namespace toprr
