// Cross-query region cache (core/region_cache.h): bit-identity of
// clipped hits against cold solves across methods, dimensions, and k;
// partial-overlap frontier resumption; LRU byte budgeting;
// invalidation; entry pinning across Clear(); and a concurrent
// SolveBatch stress. Labeled `concurrency` through the CMake glob so CI
// repeats it under TSan.
#include "core/region_cache.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <memory>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "core/engine.h"
#include "core/toprr.h"
#include "data/generator.h"
#include "data/snapshot.h"
#include "pref/pref_space.h"
#include "pref/region.h"

namespace toprr {
namespace {

PrefBox Box(std::initializer_list<double> lo,
            std::initializer_list<double> hi) {
  PrefBox box;
  box.lo = Vec(lo);
  box.hi = Vec(hi);
  return box;
}

// A quantum-grid-aligned box inside the preference simplex, or a box
// jittered strictly within its grid cells -- the loadgen's query shapes.
PrefBox GridBox(size_t dim, double quantum, uint64_t cells_lo,
                uint64_t cells_wide) {
  PrefBox box;
  box.lo = Vec(dim);
  box.hi = Vec(dim);
  for (size_t j = 0; j < dim; ++j) {
    box.lo[j] = static_cast<double>(cells_lo + j) * quantum;
    box.hi[j] = static_cast<double>(cells_lo + j + cells_wide) * quantum;
  }
  return box;
}

void ExpectBitIdentical(const ToprrResult& a, const ToprrResult& b) {
  ASSERT_EQ(a.vall.size(), b.vall.size());
  for (size_t i = 0; i < a.vall.size(); ++i) {
    ASSERT_EQ(a.vall[i].dim(), b.vall[i].dim());
    for (size_t j = 0; j < a.vall[i].dim(); ++j) {
      EXPECT_EQ(a.vall[i][j], b.vall[i][j]) << "vall[" << i << "][" << j
                                            << "]";
    }
  }
  ASSERT_EQ(a.impact_halfspaces.size(), b.impact_halfspaces.size());
  for (size_t h = 0; h < a.impact_halfspaces.size(); ++h) {
    for (size_t j = 0; j < a.impact_halfspaces[h].dim(); ++j) {
      EXPECT_EQ(a.impact_halfspaces[h].normal[j],
                b.impact_halfspaces[h].normal[j]);
    }
    EXPECT_EQ(a.impact_halfspaces[h].offset, b.impact_halfspaces[h].offset);
  }
  ASSERT_EQ(a.vertices.size(), b.vertices.size());
  for (size_t i = 0; i < a.vertices.size(); ++i) {
    for (size_t j = 0; j < a.vertices[i].dim(); ++j) {
      EXPECT_EQ(a.vertices[i][j], b.vertices[i][j]);
    }
  }
  EXPECT_EQ(a.degenerate, b.degenerate);
  EXPECT_EQ(a.geometry_skipped, b.geometry_skipped);
}

// Semantic equality: both regions classify a sample of option-space
// points identically.
void ExpectSameRegionSemantics(const Dataset& data, const ToprrResult& a,
                               const ToprrResult& b, uint64_t seed) {
  EXPECT_EQ(a.degenerate, b.degenerate);
  Rng rng(seed);
  for (int trial = 0; trial < 500; ++trial) {
    Vec o(data.dim());
    for (size_t j = 0; j < data.dim(); ++j) o[j] = rng.Uniform();
    EXPECT_EQ(a.Contains(o), b.Contains(o)) << "option " << o.ToString(6);
  }
}

TEST(RegionCacheTest, CanonicalizeSnapsOutwardAndFixesGridBoxes) {
  RegionCacheConfig config;
  config.quantum = 1.0 / 256.0;
  RegionCache cache(config);
  const PrefBox grid = GridBox(2, config.quantum, 10, 4);
  const PrefBox canon = cache.Canonicalize(grid);
  for (size_t j = 0; j < 2; ++j) {
    EXPECT_EQ(canon.lo[j], grid.lo[j]);
    EXPECT_EQ(canon.hi[j], grid.hi[j]);
  }
  // A jittered box snaps outward to a containing grid box.
  PrefBox jittered = grid;
  jittered.lo[0] += 0.4 * config.quantum;
  jittered.hi[1] -= 0.4 * config.quantum;
  const PrefBox canon2 = cache.Canonicalize(jittered);
  for (size_t j = 0; j < 2; ++j) {
    EXPECT_LE(canon2.lo[j], jittered.lo[j]);
    EXPECT_GE(canon2.hi[j], jittered.hi[j]);
    EXPECT_EQ(std::fmod(canon2.lo[j], config.quantum), 0.0);
  }
  EXPECT_EQ(canon2.lo[0], grid.lo[0]);
  EXPECT_EQ(canon2.hi[1], grid.hi[1]);
}

TEST(RegionCacheTest, BoxFromRegionRoundTripsAndRejectsNonBoxes) {
  const PrefBox box = Box({0.1, 0.2, 0.15}, {0.2, 0.3, 0.25});
  const std::optional<PrefBox> recovered =
      BoxFromRegion(PrefRegion::FromBox(box));
  ASSERT_TRUE(recovered.has_value());
  for (size_t j = 0; j < 3; ++j) {
    EXPECT_EQ(recovered->lo[j], box.lo[j]);
    EXPECT_EQ(recovered->hi[j], box.hi[j]);
  }
  // Clipping a corner off makes it a pentagon -- not a box.
  const PrefRegion clipped =
      *PrefRegion::FromBox(Box({0.1, 0.1}, {0.3, 0.3}))
           .Split(Hyperplane(Vec{1.0, 1.0}, 0.55), 1e-10)
           .below;
  EXPECT_FALSE(BoxFromRegion(clipped).has_value());
  // Degenerate boxes are rejected too.
  EXPECT_FALSE(
      BoxFromRegion(PrefRegion::FromBox(Box({0.1, 0.2}, {0.1, 0.3})))
          .has_value());
}

TEST(RegionCacheTest, GuillotineRemainderTilesTheOuterBox) {
  const PrefBox outer = Box({0.0, 0.0, 0.0}, {1.0, 1.0, 1.0});
  const PrefBox core = Box({0.2, 0.3, 0.0}, {0.6, 1.0, 0.5});
  const std::vector<PrefBox> slabs = GuillotineRemainder(outer, core);
  ASSERT_LE(slabs.size(), 6u);
  // Volumes must sum to outer - core, and a point sample must land in
  // exactly one piece (core or slab).
  double volume = 0.0;
  for (const PrefBox& slab : slabs) {
    double v = 1.0;
    for (size_t j = 0; j < 3; ++j) v *= slab.hi[j] - slab.lo[j];
    volume += v;
  }
  EXPECT_NEAR(volume, 1.0 - 0.4 * 0.7 * 0.5, 1e-12);
  Rng rng(11);
  for (int trial = 0; trial < 2000; ++trial) {
    Vec p{rng.Uniform(), rng.Uniform(), rng.Uniform()};
    int owners = core.Contains(p, 0.0) ? 1 : 0;
    for (const PrefBox& slab : slabs) {
      if (slab.Contains(p, 0.0)) ++owners;
    }
    // Interior points have exactly one owner (boundaries may double-count
    // under tolerance 0 only when the sample hits a face exactly --
    // probability zero for Uniform()).
    EXPECT_EQ(owners, 1) << p.ToString(6);
  }
}

// The headline contract: with grid-aligned zipf-style traffic, the miss
// that populates an entry and every hit that reuses it are bit-identical
// to what the same engine produces with the cache disabled -- across
// methods, dimensions, and k.
TEST(RegionCacheTest, HitsBitIdenticalToColdSolves) {
  const double quantum = 1.0 / 256.0;
  for (const ToprrMethod method :
       {ToprrMethod::kTas, ToprrMethod::kTasStar, ToprrMethod::kPac}) {
    for (size_t d = 2; d <= 5; ++d) {
      Dataset data = GenerateSynthetic(400, d, Distribution::kIndependent,
                                       7000 + d);
      for (const int k : {1, 5, 10}) {
        // PAC on higher dims is slow; trim the grid accordingly.
        const uint64_t width = d <= 3 ? 6 : 3;
        const PrefBox aligned = GridBox(d - 1, quantum, 8, width);
        if (!aligned.InsideSimplex()) continue;

        ToprrEngine cold_engine(DatasetSnapshot::FromDataset(data));
        ToprrEngine warm_engine(DatasetSnapshot::FromDataset(data));
        warm_engine.EnableRegionCache({});

        ToprrOptions options;
        options.method = method;
        ToprrOptions cached = options;
        cached.use_region_cache = true;

        const ToprrResult cold = cold_engine.Solve(k, aligned, options);
        const ToprrResult miss = warm_engine.Solve(k, aligned, cached);
        const ToprrResult hit = warm_engine.Solve(k, aligned, cached);
        SCOPED_TRACE(testing::Message()
                     << ToprrMethodName(method) << " d=" << d << " k=" << k);
        EXPECT_EQ(miss.stats.scheduler.cache_misses, 1u);
        EXPECT_EQ(hit.stats.scheduler.cache_hits, 1u);
        EXPECT_GT(hit.stats.scheduler.cache_tasks_saved, 0u);
        ExpectBitIdentical(cold, miss);
        ExpectBitIdentical(cold, hit);

        // A jittered sub-box must hit too. Its result is bit-identical
        // to what a cache-enabled MISS of the same sub-box produces
        // (both snap to the same canonical box and clip), and
        // semantically equal to the cache-off cold solve -- the clip of
        // a refinement yields a different but equivalent Vall than a
        // fresh partition rooted at the sub-box.
        PrefBox sub = aligned;
        for (size_t j = 0; j + 1 < d; ++j) {
          sub.lo[j] += 0.3 * quantum;
          sub.hi[j] -= 0.4 * quantum;
        }
        ToprrEngine fresh_engine(DatasetSnapshot::FromDataset(data));
        fresh_engine.EnableRegionCache({});
        const ToprrResult sub_miss = fresh_engine.Solve(k, sub, cached);
        const ToprrResult sub_hit = warm_engine.Solve(k, sub, cached);
        EXPECT_EQ(sub_miss.stats.scheduler.cache_misses, 1u);
        EXPECT_EQ(sub_hit.stats.scheduler.cache_hits, 1u);
        ExpectBitIdentical(sub_miss, sub_hit);
        const ToprrResult sub_cold = cold_engine.Solve(k, sub, options);
        ExpectSameRegionSemantics(data, sub_cold, sub_hit,
                                  10000 + 100 * d + k);
      }
    }
  }
}

// Region-form queries (the wire shape) reach the cache when they are
// exact boxes.
TEST(RegionCacheTest, RegionQueriesRecoverTheBoxAndHit) {
  Dataset data = GenerateSynthetic(500, 3, Distribution::kIndependent, 21);
  ToprrEngine engine(DatasetSnapshot::FromDataset(data));
  engine.EnableRegionCache({});
  ToprrOptions cached;
  cached.use_region_cache = true;
  const PrefBox box = GridBox(2, 1.0 / 256.0, 12, 5);
  ASSERT_TRUE(box.InsideSimplex());
  const ToprrQuery query = ToprrQuery::FromBox(5, box, cached);
  const ToprrResult miss = engine.Solve(query);
  const ToprrResult hit = engine.Solve(query);
  EXPECT_EQ(miss.stats.scheduler.cache_misses, 1u);
  EXPECT_EQ(hit.stats.scheduler.cache_hits, 1u);
  ExpectBitIdentical(miss, hit);
}

// Partial overlap: the resumed frontier + clipped core must agree with a
// cold solve of the same query box.
TEST(RegionCacheTest, PartialOverlapMatchesColdSolve) {
  const double quantum = 1.0 / 256.0;
  Dataset data = GenerateSynthetic(600, 3, Distribution::kAnticorrelated,
                                   1234);
  ToprrEngine cold_engine(DatasetSnapshot::FromDataset(data));
  ToprrEngine warm_engine(DatasetSnapshot::FromDataset(data));
  warm_engine.EnableRegionCache({});
  ToprrOptions options;
  ToprrOptions cached = options;
  cached.use_region_cache = true;

  const PrefBox first = GridBox(2, quantum, 10, 6);
  ASSERT_TRUE(first.InsideSimplex());
  ASSERT_EQ(warm_engine.Solve(5, first, cached).stats.scheduler.cache_misses,
            1u);

  // Shifted box: overlaps `first` but pokes past it on both axes, and is
  // NOT grid-aligned, so the exact-key and containment lookups miss.
  PrefBox shifted = first;
  for (size_t j = 0; j < 2; ++j) {
    shifted.lo[j] += 2.5 * quantum;
    shifted.hi[j] += 2.5 * quantum;
  }
  ASSERT_TRUE(shifted.InsideSimplex());
  const ToprrResult partial = warm_engine.Solve(5, shifted, cached);
  EXPECT_EQ(partial.stats.scheduler.cache_partial_hits, 1u);
  EXPECT_GT(partial.stats.scheduler.cache_tasks_saved, 0u);
  const ToprrResult cold = cold_engine.Solve(5, shifted, options);
  ExpectSameRegionSemantics(data, cold, partial, 99);
  // Vall sets must agree as sets (order/duplicates may differ across the
  // merge, so compare sorted quantized sets).
  EXPECT_EQ(cold.stats.vall_unique > 0, partial.stats.vall_unique > 0);
}

TEST(RegionCacheTest, LruEvictionRespectsByteBudget) {
  RegionCacheConfig config;
  config.byte_budget = 64 << 10;  // tiny: force eviction
  config.num_shards = 1;          // single shard = strict global LRU
  RegionCache cache(config);
  const std::string signature = "sig";
  size_t inserted_bytes = 0;
  for (int i = 0; i < 200; ++i) {
    auto entry = std::make_shared<RegionCacheEntry>();
    // Step by a full quantum so every box maps to a distinct cache key.
    const double shift = i * config.quantum;
    entry->box = Box({0.1 + shift, 0.1}, {0.2 + shift, 0.2});
    entry->k = 5;
    entry->signature = signature;
    entry->candidates.assign(64, i);
    FlatCell cell;
    cell.id = 1;
    cell.region = FlatRegion::FromBox(entry->box);
    entry->cells.push_back(std::move(cell));
    cache.Insert(entry);
    inserted_bytes += entry->bytes;
    EXPECT_LE(cache.TotalBytes(), config.byte_budget);
  }
  const RegionCacheCounters counters = cache.Counters();
  EXPECT_EQ(counters.insertions, 200u);
  EXPECT_GT(counters.evictions, 0u);
  EXPECT_GT(counters.evicted_bytes, 0u);
  EXPECT_LT(cache.NumEntries(), 200u);
  EXPECT_GT(inserted_bytes, config.byte_budget);  // budget actually bound
}

TEST(RegionCacheTest, InsertIsFirstWinsAndIdempotent) {
  RegionCache cache{RegionCacheConfig{}};
  auto make = [] {
    auto entry = std::make_shared<RegionCacheEntry>();
    entry->box = Box({0.1, 0.1}, {0.2, 0.2});
    entry->k = 3;
    entry->signature = "s";
    return entry;
  };
  cache.Insert(make());
  cache.Insert(make());
  EXPECT_EQ(cache.NumEntries(), 1u);
  EXPECT_EQ(cache.Counters().insertions, 1u);
}

TEST(RegionCacheTest, ClearEmptiesTheRegionCache) {
  Dataset data = GenerateSynthetic(300, 3, Distribution::kIndependent, 5);
  ToprrEngine engine(DatasetSnapshot::FromDataset(data));
  engine.EnableRegionCache({});
  ToprrOptions cached;
  cached.use_region_cache = true;
  const PrefBox box = GridBox(2, 1.0 / 256.0, 10, 4);
  engine.Solve(5, box, cached);
  ASSERT_EQ(engine.region_cache()->NumEntries(), 1u);
  engine.region_cache()->Clear();
  EXPECT_EQ(engine.region_cache()->NumEntries(), 0u);
  // The next identical query misses again (and repopulates).
  const ToprrResult after = engine.Solve(5, box, cached);
  EXPECT_EQ(after.stats.scheduler.cache_misses, 1u);
  EXPECT_EQ(engine.region_cache()->NumEntries(), 1u);
}

// shared_ptr payloads: an entry snapshot taken before Clear() stays
// fully usable afterwards -- the teardown-safety property the serving
// front-end's Stop() relies on.
TEST(RegionCacheTest, PinnedEntrySurvivesClear) {
  RegionCache cache{RegionCacheConfig{}};
  auto entry = std::make_shared<RegionCacheEntry>();
  entry->box = Box({0.1, 0.1}, {0.3, 0.3});
  entry->k = 2;
  entry->signature = "s";
  FlatCell cell;
  cell.id = 1;
  cell.region = FlatRegion::FromBox(entry->box);
  entry->cells.push_back(std::move(cell));
  cache.Insert(entry);
  const std::shared_ptr<const RegionCacheEntry> pinned =
      cache.FindContaining(2, "s", Box({0.15, 0.15}, {0.25, 0.25}));
  ASSERT_TRUE(pinned != nullptr);
  cache.Clear();
  EXPECT_EQ(cache.NumEntries(), 0u);
  // The snapshot's geometry is still intact.
  EXPECT_EQ(pinned->cells.size(), 1u);
  EXPECT_EQ(pinned->cells[0].region.num_vertices(), 4u);
  GeomArena arena;
  std::vector<Vec> vall;
  EXPECT_EQ(AppendCellsClippedToBox(pinned->cells,
                                    Box({0.15, 0.15}, {0.25, 0.25}), 1e-10,
                                    &arena, &vall),
            1u);
  EXPECT_EQ(vall.size(), 4u);
}

// Concurrent SolveBatch over a zipf-like mix: hits, misses, and partial
// hits race inserts and each other. Run under TSan/ASan in CI; here the
// assertion is completion plus per-query agreement with a cold engine.
TEST(RegionCacheTest, ConcurrentSolveBatchMixesHitsAndMisses) {
  const double quantum = 1.0 / 256.0;
  Dataset data = GenerateSynthetic(400, 3, Distribution::kIndependent, 77);
  ToprrEngine warm(DatasetSnapshot::FromDataset(data));
  warm.EnableRegionCache({});
  ToprrEngine cold(DatasetSnapshot::FromDataset(data));
  Rng rng(40);
  std::vector<ToprrQuery> queries;
  for (int i = 0; i < 64; ++i) {
    ToprrOptions options;
    options.build_geometry = false;
    options.use_region_cache = true;
    const uint64_t cell = 8 + static_cast<uint64_t>(rng.UniformInt(0, 2));
    PrefBox box = GridBox(2, quantum, cell, 4);
    // Half the queries jitter within the grid cell (containment hits
    // after the first), half shift off-grid (partial overlaps).
    if (i % 2 == 0) {
      const double delta = (rng.Uniform() - 0.5) * 0.8 * quantum;
      for (size_t j = 0; j < 2; ++j) {
        box.lo[j] += delta;
        box.hi[j] += delta;
      }
    } else {
      const double delta = (1.5 + rng.Uniform()) * quantum;
      for (size_t j = 0; j < 2; ++j) {
        box.lo[j] += delta;
        box.hi[j] += delta;
      }
    }
    if (!box.InsideSimplex()) continue;
    queries.push_back(ToprrQuery::FromBox(1 + (i % 3), box, options));
  }
  const std::vector<ToprrResult> results = warm.SolveBatch(queries, 8);
  ASSERT_EQ(results.size(), queries.size());
  uint64_t lookups = 0;
  for (size_t i = 0; i < results.size(); ++i) {
    SCOPED_TRACE(i);
    EXPECT_FALSE(results[i].timed_out);
    const SchedulerStats& s = results[i].stats.scheduler;
    lookups += s.cache_hits + s.cache_partial_hits + s.cache_misses;
    ToprrQuery plain = queries[i];
    plain.options.use_region_cache = false;
    const ToprrResult reference = cold.Solve(plain);
    ExpectSameRegionSemantics(data, reference, results[i], 1000 + i);
  }
  EXPECT_EQ(lookups, results.size());  // every query classified exactly once
  const RegionCacheCounters counters = warm.region_cache()->Counters();
  EXPECT_GT(counters.hits + counters.partial_hits, 0u);
  EXPECT_GT(counters.misses, 0u);
}

TEST(RegionCacheTest, StaleSnapshotEntriesAreNeverServedAfterPublish) {
  // The snapshot id is folded into every entry's signature: after a
  // publish changes the data, the same query must miss (old entries stop
  // matching) and resolve against the new snapshot -- never against the
  // old entry, whose cells would be stale.
  Dataset data = GenerateSynthetic(300, 3, Distribution::kIndependent, 6);
  MutableCatalog catalog(data);
  ToprrEngine engine(catalog.Current());
  engine.EnableRegionCache({});
  ToprrOptions cached;
  cached.use_region_cache = true;
  const PrefBox box = GridBox(2, 1.0 / 256.0, 12, 4);
  const int k = 3;

  engine.Solve(k, box, cached);
  const ToprrResult warm_v1 = engine.Solve(k, box, cached);
  EXPECT_EQ(warm_v1.stats.scheduler.cache_hits, 1u);

  // Publish a row that lands in the box's top-k everywhere: the correct
  // answer changes, so serving the stale entry would be detectable.
  catalog.StageInsert(Vec{0.99, 0.99, 0.99});
  const SnapshotPtr v2 = catalog.Publish();
  engine.SetSnapshot(v2);

  const uint64_t hits_before = engine.region_cache()->Counters().hits;
  const ToprrResult after = engine.Solve(k, box, cached);
  EXPECT_EQ(after.stats.scheduler.cache_misses, 1u);  // not a (stale) hit
  EXPECT_EQ(engine.region_cache()->Counters().hits, hits_before);
  EXPECT_EQ(after.snapshot_id, v2->id());
  // The re-solved entry answers from the new snapshot, bit-identical to
  // a cold engine pinned there.
  ToprrEngine cold(v2);
  ToprrOptions plain = cached;
  plain.use_region_cache = false;
  ExpectBitIdentical(cold.Solve(k, box, plain), after);
  // Both versions' entries coexist in the LRU (the old one just ages
  // out); nothing was mass-dropped.
  EXPECT_EQ(engine.region_cache()->NumEntries(), 2u);
  // And the new entry serves hits for the new version.
  const ToprrResult warm_v2 = engine.Solve(k, box, cached);
  EXPECT_EQ(warm_v2.stats.scheduler.cache_hits, 1u);
  ExpectBitIdentical(after, warm_v2);
}

}  // namespace
}  // namespace toprr
