#include "data/dataset.h"

#include <gtest/gtest.h>

#include "data/snapshot.h"

namespace toprr {
namespace {

TEST(DatasetTest, ConstructionAndAccess) {
  Dataset ds(3, 2);
  EXPECT_EQ(ds.size(), 3u);
  EXPECT_EQ(ds.dim(), 2u);
  ds.At(1, 0) = 0.5;
  EXPECT_DOUBLE_EQ(ds.At(1, 0), 0.5);
  EXPECT_DOUBLE_EQ(ds.At(0, 0), 0.0);
}

TEST(DatasetTest, FromRowsAndOption) {
  const Dataset ds = Dataset::FromRows({Vec{0.1, 0.2}, Vec{0.3, 0.4}});
  EXPECT_EQ(ds.size(), 2u);
  EXPECT_TRUE(ApproxEqual(ds.Option(1), Vec{0.3, 0.4}, 1e-15));
}

TEST(DatasetTest, AppendSetsDimension) {
  Dataset ds;
  ds.Append(Vec{1.0, 2.0, 3.0});
  EXPECT_EQ(ds.dim(), 3u);
  ds.Append(Vec{4.0, 5.0, 6.0});
  EXPECT_EQ(ds.size(), 2u);
  EXPECT_DOUBLE_EQ(ds.At(1, 2), 6.0);
}

TEST(DatasetTest, RowPointer) {
  const Dataset ds = Dataset::FromRows({Vec{0.7, 0.9}});
  const double* row = ds.Row(0);
  EXPECT_DOUBLE_EQ(row[0], 0.7);
  EXPECT_DOUBLE_EQ(row[1], 0.9);
}

TEST(DatasetTest, Score) {
  const Dataset ds = Dataset::FromRows({Vec{0.9, 0.4}});
  EXPECT_NEAR(ds.Score(0, Vec{0.8, 0.2}), 0.9 * 0.8 + 0.4 * 0.2, 1e-12);
}

TEST(DatasetTest, NormalizeUnit) {
  Dataset ds = Dataset::FromRows({Vec{0.0, 10.0}, Vec{5.0, 20.0},
                                  Vec{10.0, 30.0}});
  const auto ranges = ds.NormalizeUnit();
  EXPECT_DOUBLE_EQ(ranges[0].first, 0.0);
  EXPECT_DOUBLE_EQ(ranges[0].second, 10.0);
  EXPECT_DOUBLE_EQ(ds.At(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(ds.At(1, 0), 0.5);
  EXPECT_DOUBLE_EQ(ds.At(2, 1), 1.0);
}

TEST(DatasetTest, NormalizeConstantColumn) {
  Dataset ds = Dataset::FromRows({Vec{3.0, 1.0}, Vec{3.0, 2.0}});
  ds.NormalizeUnit();
  EXPECT_DOUBLE_EQ(ds.At(0, 0), 0.5);
  EXPECT_DOUBLE_EQ(ds.At(1, 0), 0.5);
}

TEST(DatasetTest, DebugStringTruncates) {
  Dataset ds(20, 2);
  const std::string s = ds.DebugString(3);
  EXPECT_NE(s.find("..."), std::string::npos);
}

// ---- DatasetView -----------------------------------------------------

TEST(DatasetViewTest, ContiguousViewMirrorsDataset) {
  const Dataset ds = Dataset::FromRows({Vec{0.1, 0.2}, Vec{0.3, 0.4}});
  const DatasetView view(ds);
  ASSERT_EQ(view.size(), ds.size());
  ASSERT_EQ(view.dim(), ds.dim());
  EXPECT_EQ(view.Row(1), ds.Row(1));  // same pointer, zero indirection
  EXPECT_DOUBLE_EQ(view.At(1, 0), 0.3);
  EXPECT_DOUBLE_EQ(view.Score(0, Vec{1.0, 1.0}), 0.1 + 0.2);
}

TEST(DatasetViewTest, ChunkedViewCrossesChunkBoundaries) {
  // A snapshot larger than one chunk: the view must address rows across
  // the chunk seam identically to the snapshot's own Row().
  DatasetBuilder builder(2);
  const size_t n = DatasetSnapshot::kChunkRows + 7;
  for (size_t i = 0; i < n; ++i) {
    builder.Append(Vec{static_cast<double>(i), static_cast<double>(2 * i)});
  }
  const SnapshotPtr snap = builder.Build();
  const DatasetView view = snap->View();
  ASSERT_EQ(view.size(), n);
  for (const size_t row : {size_t{0}, DatasetSnapshot::kChunkRows - 1,
                           DatasetSnapshot::kChunkRows, n - 1}) {
    EXPECT_EQ(view.Row(row), snap->Row(row));
    EXPECT_DOUBLE_EQ(view.At(row, 0), static_cast<double>(row));
  }
}

// ---- DatasetSnapshot / DatasetBuilder / MutableCatalog ----------------

Vec Row2(double a, double b) { return Vec{a, b}; }

TEST(SnapshotTest, BuilderBuildsRoot) {
  DatasetBuilder builder;
  EXPECT_EQ(builder.Append(Row2(0.1, 0.9)), 0);
  EXPECT_EQ(builder.Append(Row2(0.8, 0.2)), 1);
  const SnapshotPtr snap = builder.Build();
  EXPECT_EQ(snap->rows(), 2u);
  EXPECT_EQ(snap->dim(), 2u);
  EXPECT_EQ(snap->live_rows(), 2u);
  EXPECT_EQ(snap->parent_id(), 0u);
  EXPECT_TRUE(snap->delta().empty());
  EXPECT_DOUBLE_EQ(snap->Row(1)[0], 0.8);
  // Root ids match the plain-Dataset content hash of the same table.
  const Dataset same =
      Dataset::FromRows({Row2(0.1, 0.9), Row2(0.8, 0.2)});
  EXPECT_EQ(snap->id(), DatasetContentHash(same));
  // Different content, different id.
  const Dataset other =
      Dataset::FromRows({Row2(0.1, 0.9), Row2(0.8, 0.3)});
  EXPECT_NE(snap->id(), DatasetContentHash(other));
}

TEST(SnapshotTest, PublishAssignsStableIdsAndTombstones) {
  MutableCatalog catalog(
      Dataset::FromRows({Row2(0.1, 0.2), Row2(0.3, 0.4), Row2(0.5, 0.6)}));
  const SnapshotPtr v1 = catalog.Current();
  EXPECT_EQ(catalog.StageInsert(Row2(0.7, 0.8)), 3);
  EXPECT_EQ(catalog.StageInsert(Row2(0.9, 1.0)), 4);
  EXPECT_TRUE(catalog.StageDelete(1));
  EXPECT_FALSE(catalog.StageDelete(1));   // already staged
  EXPECT_FALSE(catalog.StageDelete(99));  // unknown id
  EXPECT_EQ(catalog.staged_inserts(), 2u);
  EXPECT_EQ(catalog.staged_deletes(), 1u);

  const SnapshotPtr v2 = catalog.Publish();
  EXPECT_EQ(v2->rows(), 5u);       // physical rows grow, never shrink
  EXPECT_EQ(v2->live_rows(), 4u);  // 3 - 1 + 2
  EXPECT_FALSE(v2->IsLive(1));
  EXPECT_TRUE(v2->IsLive(3));
  EXPECT_EQ(v2->live_ids(), (std::vector<int>{0, 2, 3, 4}));
  // Parent rows keep their ids and values; v1 is untouched.
  EXPECT_DOUBLE_EQ(v2->Row(2)[0], 0.5);
  EXPECT_DOUBLE_EQ(v2->Row(4)[1], 1.0);
  EXPECT_EQ(v1->live_rows(), 3u);
  EXPECT_TRUE(v1->IsLive(1));
  // Version bookkeeping.
  EXPECT_EQ(v2->parent_id(), v1->id());
  EXPECT_NE(v2->id(), v1->id());
  EXPECT_EQ(v2->delta().inserted, (std::vector<int>{3, 4}));
  EXPECT_EQ(v2->delta().deleted, (std::vector<int>{1}));
  // Staging area is clear: publishing again is a no-op.
  EXPECT_EQ(catalog.Publish(), v2);
}

TEST(SnapshotTest, PublishSharesUnchangedChunksCopyOnWrite) {
  // Two full chunks plus a partial tail; the publish must share the full
  // chunks by pointer and clone only the tail it extends.
  DatasetBuilder builder(2);
  const size_t n = 2 * DatasetSnapshot::kChunkRows + 10;
  for (size_t i = 0; i < n; ++i) {
    builder.Append(Row2(static_cast<double>(i), 0.5));
  }
  MutableCatalog catalog(builder.Build());
  const SnapshotPtr v1 = catalog.Current();
  catalog.StageInsert(Row2(-1.0, -2.0));
  const SnapshotPtr v2 = catalog.Publish();

  EXPECT_EQ(v2->ChunkForRow(0), v1->ChunkForRow(0));
  EXPECT_EQ(v2->ChunkForRow(DatasetSnapshot::kChunkRows),
            v1->ChunkForRow(DatasetSnapshot::kChunkRows));
  // The partial tail was cloned, not mutated in place.
  EXPECT_NE(v2->ChunkForRow(n), v1->ChunkForRow(n - 1));
  EXPECT_DOUBLE_EQ(v2->Row(n)[0], -1.0);
  EXPECT_DOUBLE_EQ(v1->Row(n - 1)[0], static_cast<double>(n - 1));

  // A delete-only publish shares every chunk (tombstone bit flip only).
  catalog.StageDelete(0);
  const SnapshotPtr v3 = catalog.Publish();
  EXPECT_EQ(v3->ChunkForRow(0), v2->ChunkForRow(0));
  EXPECT_EQ(v3->ChunkForRow(n), v2->ChunkForRow(n));
  EXPECT_FALSE(v3->IsLive(0));
  EXPECT_TRUE(v2->IsLive(0));
}

TEST(SnapshotTest, UnstagedInsertMaterializesAsTombstone) {
  MutableCatalog catalog(Dataset::FromRows({Row2(0.1, 0.2)}));
  const int first = catalog.StageInsert(Row2(0.3, 0.4));
  const int second = catalog.StageInsert(Row2(0.5, 0.6));
  EXPECT_TRUE(catalog.StageDelete(first));  // un-stage before publish
  const SnapshotPtr snap = catalog.Publish();
  // The un-staged row still occupies its promised physical id (as a
  // tombstone) so `second`'s id keeps its promise.
  EXPECT_EQ(snap->rows(), 3u);
  EXPECT_FALSE(snap->IsLive(static_cast<size_t>(first)));
  EXPECT_TRUE(snap->IsLive(static_cast<size_t>(second)));
  EXPECT_DOUBLE_EQ(snap->Row(static_cast<size_t>(second))[0], 0.5);
  EXPECT_EQ(snap->delta().inserted, (std::vector<int>{second}));
  EXPECT_TRUE(snap->delta().deleted.empty());
}

TEST(SnapshotTest, PublishIdReflectsTheDelta) {
  // Equal roots hash equal; publishes mix the delta's bytes into the
  // parent id, so any difference in what was inserted changes the id.
  MutableCatalog a(Dataset::FromRows({Row2(0.1, 0.2)}));
  MutableCatalog b(Dataset::FromRows({Row2(0.1, 0.2)}));
  EXPECT_EQ(a.CurrentId(), b.CurrentId());
  a.StageInsert(Row2(0.3, 0.4));
  const uint64_t a2 = a.Publish()->id();
  b.StageInsert(Row2(0.3, 0.5));
  const uint64_t b2 = b.Publish()->id();
  EXPECT_NE(a2, b2);
}

TEST(SnapshotTest, EmptyRootAdoptsStagedDimension) {
  MutableCatalog catalog(DatasetBuilder().Build());
  EXPECT_EQ(catalog.StageInsert(Row2(0.2, 0.8)), 0);
  const SnapshotPtr snap = catalog.Publish();
  EXPECT_EQ(snap->dim(), 2u);
  EXPECT_EQ(snap->live_rows(), 1u);
  EXPECT_DOUBLE_EQ(snap->Row(0)[1], 0.8);
}

}  // namespace
}  // namespace toprr
