#include "data/dataset.h"

#include <gtest/gtest.h>

namespace toprr {
namespace {

TEST(DatasetTest, ConstructionAndAccess) {
  Dataset ds(3, 2);
  EXPECT_EQ(ds.size(), 3u);
  EXPECT_EQ(ds.dim(), 2u);
  ds.At(1, 0) = 0.5;
  EXPECT_DOUBLE_EQ(ds.At(1, 0), 0.5);
  EXPECT_DOUBLE_EQ(ds.At(0, 0), 0.0);
}

TEST(DatasetTest, FromRowsAndOption) {
  const Dataset ds = Dataset::FromRows({Vec{0.1, 0.2}, Vec{0.3, 0.4}});
  EXPECT_EQ(ds.size(), 2u);
  EXPECT_TRUE(ApproxEqual(ds.Option(1), Vec{0.3, 0.4}, 1e-15));
}

TEST(DatasetTest, AppendSetsDimension) {
  Dataset ds;
  ds.Append(Vec{1.0, 2.0, 3.0});
  EXPECT_EQ(ds.dim(), 3u);
  ds.Append(Vec{4.0, 5.0, 6.0});
  EXPECT_EQ(ds.size(), 2u);
  EXPECT_DOUBLE_EQ(ds.At(1, 2), 6.0);
}

TEST(DatasetTest, RowPointer) {
  const Dataset ds = Dataset::FromRows({Vec{0.7, 0.9}});
  const double* row = ds.Row(0);
  EXPECT_DOUBLE_EQ(row[0], 0.7);
  EXPECT_DOUBLE_EQ(row[1], 0.9);
}

TEST(DatasetTest, Score) {
  const Dataset ds = Dataset::FromRows({Vec{0.9, 0.4}});
  EXPECT_NEAR(ds.Score(0, Vec{0.8, 0.2}), 0.9 * 0.8 + 0.4 * 0.2, 1e-12);
}

TEST(DatasetTest, NormalizeUnit) {
  Dataset ds = Dataset::FromRows({Vec{0.0, 10.0}, Vec{5.0, 20.0},
                                  Vec{10.0, 30.0}});
  const auto ranges = ds.NormalizeUnit();
  EXPECT_DOUBLE_EQ(ranges[0].first, 0.0);
  EXPECT_DOUBLE_EQ(ranges[0].second, 10.0);
  EXPECT_DOUBLE_EQ(ds.At(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(ds.At(1, 0), 0.5);
  EXPECT_DOUBLE_EQ(ds.At(2, 1), 1.0);
}

TEST(DatasetTest, NormalizeConstantColumn) {
  Dataset ds = Dataset::FromRows({Vec{3.0, 1.0}, Vec{3.0, 2.0}});
  ds.NormalizeUnit();
  EXPECT_DOUBLE_EQ(ds.At(0, 0), 0.5);
  EXPECT_DOUBLE_EQ(ds.At(1, 0), 0.5);
}

TEST(DatasetTest, DebugStringTruncates) {
  Dataset ds(20, 2);
  const std::string s = ds.DebugString(3);
  EXPECT_NE(s.find("..."), std::string::npos);
}

}  // namespace
}  // namespace toprr
