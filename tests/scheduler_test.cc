// Determinism contract of the partition scheduler (core/scheduler.h): the
// multi-threaded executor must produce bit-identical ToprrResults to the
// sequential executor for every method, across seeds, dimensions, and k.
#include "core/scheduler.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/toprr.h"
#include "data/generator.h"
#include "pref/pref_space.h"
#include "topk/rskyband.h"

namespace toprr {
namespace {

// Exact (bitwise) equality of two vectors of Vecs.
void ExpectSameVecs(const std::vector<Vec>& a, const std::vector<Vec>& b,
                    const char* what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].dim(), b[i].dim()) << what << "[" << i << "]";
    for (size_t j = 0; j < a[i].dim(); ++j) {
      EXPECT_EQ(a[i][j], b[i][j]) << what << "[" << i << "][" << j << "]";
    }
  }
}

void ExpectSameHalfspaces(const std::vector<Halfspace>& a,
                          const std::vector<Halfspace>& b,
                          const char* what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].offset, b[i].offset) << what << "[" << i << "]";
    ASSERT_EQ(a[i].normal.dim(), b[i].normal.dim()) << what;
    for (size_t j = 0; j < a[i].normal.dim(); ++j) {
      EXPECT_EQ(a[i].normal[j], b[i].normal[j])
          << what << "[" << i << "][" << j << "]";
    }
  }
}

// Bit-identical results, modulo wall-clock timing fields.
void ExpectIdenticalResults(const ToprrResult& seq, const ToprrResult& par) {
  ASSERT_EQ(seq.timed_out, par.timed_out);
  EXPECT_EQ(seq.degenerate, par.degenerate);
  EXPECT_EQ(seq.geometry_skipped, par.geometry_skipped);
  ExpectSameHalfspaces(seq.impact_halfspaces, par.impact_halfspaces,
                       "impact_halfspaces");
  ExpectSameHalfspaces(seq.box_halfspaces, par.box_halfspaces,
                       "box_halfspaces");
  ExpectSameVecs(seq.vall, par.vall, "vall");
  ExpectSameVecs(seq.vertices, par.vertices, "vertices");
  EXPECT_EQ(seq.supporting_halfspaces, par.supporting_halfspaces);
  EXPECT_EQ(seq.stats.candidates_after_filter,
            par.stats.candidates_after_filter);
  EXPECT_EQ(seq.stats.regions_tested, par.stats.regions_tested);
  EXPECT_EQ(seq.stats.regions_accepted, par.stats.regions_accepted);
  EXPECT_EQ(seq.stats.regions_split, par.stats.regions_split);
  EXPECT_EQ(seq.stats.kipr_accepts, par.stats.kipr_accepts);
  EXPECT_EQ(seq.stats.lemma7_accepts, par.stats.lemma7_accepts);
  EXPECT_EQ(seq.stats.lemma5_prunes, par.stats.lemma5_prunes);
  EXPECT_EQ(seq.stats.vall_raw, par.stats.vall_raw);
  EXPECT_EQ(seq.stats.vall_unique, par.stats.vall_unique);
}

TEST(SchedulerTest, ParallelMatchesSequentialAcrossMethodsDimsAndK) {
  const ToprrMethod methods[] = {ToprrMethod::kPac, ToprrMethod::kTas,
                                 ToprrMethod::kTasStar};
  Rng rng(7001);
  for (uint64_t seed : {11u, 12u}) {
    for (size_t d : {2u, 3u, 4u}) {
      const Dataset ds =
          GenerateSynthetic(300, d, Distribution::kIndependent, seed);
      const PrefBox box = RandomPrefBox(d - 1, 0.04, rng);
      for (int k : {1, 5}) {
        for (ToprrMethod method : methods) {
          ToprrOptions seq_options;
          seq_options.method = method;
          seq_options.num_threads = 1;
          ToprrOptions par_options = seq_options;
          par_options.num_threads = 4;
          const ToprrResult seq = SolveToprr(ds, k, box, seq_options);
          const ToprrResult par = SolveToprr(ds, k, box, par_options);
          ASSERT_FALSE(seq.timed_out)
              << ToprrMethodName(method) << " d=" << d << " k=" << k;
          SCOPED_TRACE(std::string(ToprrMethodName(method)) + " d=" +
                       std::to_string(d) + " k=" + std::to_string(k) +
                       " seed=" + std::to_string(seed));
          ExpectIdenticalResults(seq, par);
        }
      }
    }
  }
}

TEST(SchedulerTest, ParallelMatchesSequentialOnLargerInstance) {
  const Dataset ds =
      GenerateSynthetic(2000, 3, Distribution::kAnticorrelated, 77);
  PrefBox box;
  box.lo = Vec{0.28, 0.30};
  box.hi = Vec{0.34, 0.36};
  ToprrOptions seq_options;
  seq_options.num_threads = 1;
  ToprrOptions par_options;
  par_options.num_threads = 8;
  const ToprrResult seq = SolveToprr(ds, 10, box, seq_options);
  const ToprrResult par = SolveToprr(ds, 10, box, par_options);
  ASSERT_FALSE(seq.timed_out);
  ExpectIdenticalResults(seq, par);
  EXPECT_GT(seq.stats.regions_tested, 10u);  // nontrivial tree
}

TEST(SchedulerTest, ParallelRunsAreReproducible) {
  // Two parallel runs agree with each other (not only with sequential):
  // thread scheduling must not leak into the result.
  const Dataset ds = GenerateSynthetic(500, 4, Distribution::kCorrelated, 55);
  Rng rng(7002);
  const PrefBox box = RandomPrefBox(3, 0.03, rng);
  ToprrOptions options;
  options.num_threads = 4;
  const ToprrResult first = SolveToprr(ds, 7, box, options);
  const ToprrResult second = SolveToprr(ds, 7, box, options);
  ASSERT_FALSE(first.timed_out);
  ExpectIdenticalResults(first, second);
}

TEST(SchedulerTest, NumThreadsZeroMeansHardware) {
  const Dataset ds = GenerateSynthetic(200, 3, Distribution::kIndependent, 9);
  PrefBox box;
  box.lo = Vec{0.3, 0.3};
  box.hi = Vec{0.33, 0.33};
  ToprrOptions seq_options;  // num_threads = 1
  ToprrOptions auto_options;
  auto_options.num_threads = 0;
  const ToprrResult seq = SolveToprr(ds, 5, box, seq_options);
  const ToprrResult par = SolveToprr(ds, 5, box, auto_options);
  ASSERT_FALSE(seq.timed_out);
  ExpectIdenticalResults(seq, par);
}

TEST(SchedulerTest, PartitionOutputIdenticalWithCollectors) {
  // The auxiliary collectors (top-k union, accepted cells) must merge
  // deterministically too -- they feed the UTK filter and impact APIs.
  const Dataset ds = GenerateSynthetic(400, 3, Distribution::kIndependent, 21);
  Rng rng(7003);
  const PrefBox box = RandomPrefBox(2, 0.05, rng);
  const int k = 6;
  const std::vector<int> candidates = RSkyband(ds, box, k);
  PartitionConfig config;
  config.use_lemma5 = true;
  config.use_kswitch = true;
  config.collect_topk_union = true;
  config.collect_regions = true;

  PartitionConfig par_config = config;
  par_config.num_threads = 4;
  const PartitionOutput seq = PartitionPreferenceRegion(
      ds, candidates, k, PrefRegion::FromBox(box), config);
  const PartitionOutput par = PartitionPreferenceRegion(
      ds, candidates, k, PrefRegion::FromBox(box), par_config);

  ASSERT_FALSE(seq.timed_out);
  ASSERT_FALSE(par.timed_out);
  EXPECT_EQ(seq.topk_union, par.topk_union);
  ExpectSameVecs(seq.vall, par.vall, "vall");
  ASSERT_EQ(seq.regions.size(), par.regions.size());
  for (size_t i = 0; i < seq.regions.size(); ++i) {
    EXPECT_EQ(seq.regions[i].topk_ids, par.regions[i].topk_ids) << i;
    ExpectSameVecs(seq.regions[i].region.vertices(),
                   par.regions[i].region.vertices(), "region vertices");
  }
}

TEST(SchedulerTest, TimeBudgetStopsParallelRun) {
  const Dataset ds =
      GenerateSynthetic(5000, 4, Distribution::kAnticorrelated, 31);
  PrefBox box;
  box.lo = Vec{0.2, 0.2, 0.2};
  box.hi = Vec{0.4, 0.4, 0.4};
  ToprrOptions options;
  options.num_threads = 4;
  options.time_budget_seconds = 1e-5;  // unreachable: must abort cleanly
  const ToprrResult r = SolveToprr(ds, 20, box, options);
  EXPECT_TRUE(r.timed_out);
}

TEST(SchedulerTest, RepeatedBudgetStopsDoNotDeadlock) {
  // Regression: a worker finishing its in-flight region after another
  // worker flipped the stop flag must still wake the caller even though
  // the abandoned queue is non-empty. The race needs many attempts to
  // hit; without the fix this looped test hung within ~50 iterations.
  const Dataset ds =
      GenerateSynthetic(4000, 4, Distribution::kAnticorrelated, 33);
  PrefBox box;
  box.lo = Vec{0.2, 0.2, 0.2};
  box.hi = Vec{0.4, 0.4, 0.4};
  ToprrOptions options;
  options.num_threads = 8;
  options.time_budget_seconds = 2e-4;
  for (int i = 0; i < 60; ++i) {
    const ToprrResult r = SolveToprr(ds, 15, box, options);
    EXPECT_TRUE(r.timed_out) << i;
  }
}

TEST(SchedulerTest, RegionCapStopsParallelRun) {
  const Dataset ds =
      GenerateSynthetic(3000, 4, Distribution::kAnticorrelated, 32);
  PrefBox box;
  box.lo = Vec{0.2, 0.2, 0.2};
  box.hi = Vec{0.4, 0.4, 0.4};
  ToprrOptions options;
  options.num_threads = 4;
  options.max_regions = 3;
  const ToprrResult r = SolveToprr(ds, 15, box, options);
  EXPECT_TRUE(r.timed_out);
}

TEST(SchedulerTest, RepeatedRegionCapStopsTerminate) {
  // Termination under budget-stop for the stealing executor: a worker
  // claiming the over-cap ticket flips the stop flag while peers hold
  // stolen tasks and non-empty deques; every worker must still exit (the
  // ctest timeout converts a missed termination into a failure).
  const Dataset ds =
      GenerateSynthetic(2500, 4, Distribution::kAnticorrelated, 34);
  PrefBox box;
  box.lo = Vec{0.2, 0.2, 0.2};
  box.hi = Vec{0.4, 0.4, 0.4};
  for (int i = 0; i < 40; ++i) {
    ToprrOptions options;
    options.num_threads = 2 + i % 7;  // sweep 2..8 workers
    options.max_regions = 1 + static_cast<size_t>(i) % 5;
    const ToprrResult r = SolveToprr(ds, 15, box, options);
    EXPECT_TRUE(r.timed_out) << i;
  }
}

TEST(SchedulerTest, StealingExecutorStressByteIdenticalAcrossSeeds) {
  // The satellite stress test: 2-8 workers on budget-capped deep trees
  // (generous caps that must not fire) against the sequential executor,
  // across 5 seeds, comparing the full PartitionOutput byte for byte --
  // collectors included.
  for (uint64_t seed : {101u, 102u, 103u, 104u, 105u}) {
    const Dataset ds =
        GenerateSynthetic(1200, 3, Distribution::kAnticorrelated, seed);
    Rng rng(9000 + seed);
    const PrefBox box = RandomPrefBox(2, 0.12, rng);
    const int k = 10;
    const std::vector<int> candidates = RSkyband(ds, box, k);
    PartitionConfig config;
    config.use_lemma5 = true;
    config.use_lemma7 = true;
    config.use_kswitch = true;
    config.collect_topk_union = true;
    config.collect_regions = true;
    config.max_regions = 200000;        // budget-capped, cap not reached
    config.time_budget_seconds = 120.0; // ditto
    const PartitionOutput seq = PartitionPreferenceRegion(
        ds, candidates, k, PrefRegion::FromBox(box), config);
    ASSERT_FALSE(seq.timed_out) << seed;
    ASSERT_GT(seq.regions_tested, 20u) << seed << ": tree too shallow";

    for (int workers : {2, 3, 5, 8}) {
      PartitionConfig par_config = config;
      par_config.num_threads = workers;
      const PartitionOutput par = PartitionPreferenceRegion(
          ds, candidates, k, PrefRegion::FromBox(box), par_config);
      SCOPED_TRACE("seed=" + std::to_string(seed) +
                   " workers=" + std::to_string(workers));
      ASSERT_FALSE(par.timed_out);
      EXPECT_EQ(seq.regions_tested, par.regions_tested);
      EXPECT_EQ(seq.regions_accepted, par.regions_accepted);
      EXPECT_EQ(seq.regions_split, par.regions_split);
      EXPECT_EQ(seq.kipr_accepts, par.kipr_accepts);
      EXPECT_EQ(seq.lemma7_accepts, par.lemma7_accepts);
      EXPECT_EQ(seq.lemma5_prunes, par.lemma5_prunes);
      EXPECT_EQ(seq.topk_union, par.topk_union);
      ExpectSameVecs(seq.vall, par.vall, "vall");
      ASSERT_EQ(seq.regions.size(), par.regions.size());
      for (size_t i = 0; i < seq.regions.size(); ++i) {
        EXPECT_EQ(seq.regions[i].topk_ids, par.regions[i].topk_ids) << i;
        ExpectSameVecs(seq.regions[i].region.vertices(),
                       par.regions[i].region.vertices(), "region vertices");
      }
      // Telemetry invariant: the per-worker executed counts partition the
      // tree exactly (worker attribution itself is timing-dependent).
      ASSERT_EQ(par.scheduler.workers.size(), static_cast<size_t>(workers));
      EXPECT_EQ(par.scheduler.TotalExecuted(), par.regions_tested);
      EXPECT_GE(par.scheduler.MaxDequeHighWater(), 1u);
    }
  }
}

TEST(SchedulerTest, SchedulerStatsAccountAllTasksAndCanBeDisabled) {
  const Dataset ds = GenerateSynthetic(600, 3, Distribution::kIndependent, 61);
  Rng rng(7004);
  const PrefBox box = RandomPrefBox(2, 0.05, rng);

  ToprrOptions options;
  options.num_threads = 1;
  const ToprrResult seq = SolveToprr(ds, 5, box, options);
  ASSERT_FALSE(seq.timed_out);
  ASSERT_EQ(seq.stats.scheduler.workers.size(), 1u);
  EXPECT_EQ(seq.stats.scheduler.TotalExecuted(), seq.stats.regions_tested);
  EXPECT_EQ(seq.stats.scheduler.TotalStolen(), 0u);
  EXPECT_GT(seq.stats.scheduler.wall_seconds, 0.0);

  options.num_threads = 4;
  const ToprrResult par = SolveToprr(ds, 5, box, options);
  ASSERT_FALSE(par.timed_out);
  ASSERT_EQ(par.stats.scheduler.workers.size(), 4u);
  EXPECT_EQ(par.stats.scheduler.TotalExecuted(), par.stats.regions_tested);

  options.collect_scheduler_stats = false;
  const ToprrResult quiet = SolveToprr(ds, 5, box, options);
  ASSERT_FALSE(quiet.timed_out);
  EXPECT_TRUE(quiet.stats.scheduler.workers.empty());
}

}  // namespace
}  // namespace toprr
