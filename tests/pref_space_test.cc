#include "pref/pref_space.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "data/generator.h"

namespace toprr {
namespace {

TEST(PrefSpaceTest, FullAndReducedWeightRoundTrip) {
  const Vec x{0.2, 0.3};
  const Vec w = FullWeight(x);
  ASSERT_EQ(w.dim(), 3u);
  EXPECT_DOUBLE_EQ(w[0], 0.2);
  EXPECT_DOUBLE_EQ(w[1], 0.3);
  EXPECT_DOUBLE_EQ(w[2], 0.5);
  EXPECT_NEAR(w.Sum(), 1.0, 1e-15);
  EXPECT_TRUE(ApproxEqual(ReducedWeight(w), x, 1e-15));
}

TEST(PrefSpaceTest, ReducedScoreMatchesFullDot) {
  Rng rng(1);
  for (int trial = 0; trial < 50; ++trial) {
    const size_t d = 2 + static_cast<size_t>(trial % 5);
    Vec p(d);
    for (size_t j = 0; j < d; ++j) p[j] = rng.Uniform();
    Vec x(d - 1);
    double sum = 0.0;
    for (size_t j = 0; j + 1 < d; ++j) {
      x[j] = rng.Uniform(0.0, 1.0 / static_cast<double>(d));
      sum += x[j];
    }
    ASSERT_LE(sum, 1.0);
    EXPECT_NEAR(ReducedScore(p.data(), x), Dot(p, FullWeight(x)), 1e-12);
  }
}

TEST(PrefSpaceTest, ScoreDiffConsistency) {
  const Vec p{0.9, 0.4};
  const Vec q{0.7, 0.9};
  const Vec x{0.6};
  EXPECT_NEAR(ReducedScoreDiff(p.data(), q.data(), x),
              ReducedScore(p.data(), x) - ReducedScore(q.data(), x), 1e-12);
}

TEST(PrefSpaceTest, EqualityHyperplaneIsCrossover) {
  // p1 = (0.9, 0.4), p2 = (0.7, 0.9) cross at w[0] = 5/7 (paper Fig 1d).
  const Vec p1{0.9, 0.4};
  const Vec p2{0.7, 0.9};
  const Hyperplane h = ScoreEqualityHyperplane(p1.data(), p2.data(), 1);
  // Solve h: n*x = b.
  ASSERT_NE(h.normal[0], 0.0);
  EXPECT_NEAR(h.offset / h.normal[0], 5.0 / 7.0, 1e-12);
  // On-plane score equality:
  const Vec x{5.0 / 7.0};
  EXPECT_NEAR(ReducedScoreDiff(p1.data(), p2.data(), x), 0.0, 1e-12);
}

TEST(PrefSpaceTest, PreferenceHalfspaceOrientation) {
  const Vec p1{0.9, 0.4};
  const Vec p2{0.7, 0.9};
  const Halfspace wh = ScorePreferenceHalfspace(p1.data(), p2.data(), 1);
  // p1 preferred at x = 0.9 (speed-heavy), not at x = 0.2.
  EXPECT_TRUE(wh.Contains(Vec{0.9}));
  EXPECT_FALSE(wh.Contains(Vec{0.2}));
}

TEST(PrefBoxTest, VerticesAndContains) {
  PrefBox box;
  box.lo = Vec{0.2, 0.1};
  box.hi = Vec{0.3, 0.2};
  const std::vector<Vec> corners = box.Vertices();
  ASSERT_EQ(corners.size(), 4u);
  for (const Vec& c : corners) EXPECT_TRUE(box.Contains(c));
  EXPECT_TRUE(box.Contains(Vec{0.25, 0.15}));
  EXPECT_FALSE(box.Contains(Vec{0.35, 0.15}));
  EXPECT_TRUE(box.InsideSimplex());
  EXPECT_TRUE(ApproxEqual(box.Center(), Vec{0.25, 0.15}, 1e-15));
}

TEST(PrefBoxTest, SimplexViolationDetected) {
  PrefBox box;
  box.lo = Vec{0.6, 0.3};
  box.hi = Vec{0.7, 0.5};  // sum hi = 1.2 > 1
  EXPECT_FALSE(box.InsideSimplex());
}

TEST(PrefBoxTest, HalfspacesMatchContains) {
  PrefBox box;
  box.lo = Vec{0.1, 0.2};
  box.hi = Vec{0.4, 0.3};
  const auto hs = box.Halfspaces();
  Rng rng(2);
  for (int trial = 0; trial < 200; ++trial) {
    const Vec x{rng.Uniform(), rng.Uniform()};
    bool in_hs = true;
    for (const Halfspace& h : hs) {
      if (!h.Contains(x, 1e-12)) {
        in_hs = false;
        break;
      }
    }
    EXPECT_EQ(in_hs, box.Contains(x, 1e-12));
  }
}

TEST(PrefSpaceTest, BoxScoreDiffExtremaMatchSampling) {
  Rng rng(3);
  const Dataset ds = GenerateSynthetic(20, 4,
                                       Distribution::kIndependent, 30);
  PrefBox box;
  box.lo = Vec{0.1, 0.15, 0.2};
  box.hi = Vec{0.2, 0.25, 0.3};
  for (int trial = 0; trial < 40; ++trial) {
    const int a = static_cast<int>(rng.UniformInt(0, 19));
    const int b = static_cast<int>(rng.UniformInt(0, 19));
    const double lo = MinScoreDiffOverBox(ds.Row(a), ds.Row(b), box);
    const double hi = MaxScoreDiffOverBox(ds.Row(a), ds.Row(b), box);
    EXPECT_LE(lo, hi + 1e-12);
    double sampled_lo = 1e9;
    double sampled_hi = -1e9;
    for (int s = 0; s < 300; ++s) {
      Vec x(3);
      for (size_t j = 0; j < 3; ++j) {
        x[j] = rng.Uniform(box.lo[j], box.hi[j]);
      }
      const double diff = ReducedScoreDiff(ds.Row(a), ds.Row(b), x);
      sampled_lo = std::min(sampled_lo, diff);
      sampled_hi = std::max(sampled_hi, diff);
    }
    EXPECT_LE(lo, sampled_lo + 1e-9);
    EXPECT_GE(hi, sampled_hi - 1e-9);
    // Corners attain the extrema (linear objective over a box).
    double corner_lo = 1e9;
    double corner_hi = -1e9;
    for (const Vec& c : box.Vertices()) {
      const double diff = ReducedScoreDiff(ds.Row(a), ds.Row(b), c);
      corner_lo = std::min(corner_lo, diff);
      corner_hi = std::max(corner_hi, diff);
    }
    EXPECT_NEAR(lo, corner_lo, 1e-12);
    EXPECT_NEAR(hi, corner_hi, 1e-12);
  }
}

TEST(RandomPrefBoxTest, SideLengthAndSimplex) {
  Rng rng(4);
  for (size_t dim : {1u, 3u, 5u}) {
    for (int trial = 0; trial < 20; ++trial) {
      const PrefBox box = RandomPrefBox(dim, 0.05, rng);
      EXPECT_TRUE(box.InsideSimplex(1e-9));
      for (size_t j = 0; j < dim; ++j) {
        EXPECT_NEAR(box.hi[j] - box.lo[j], 0.05, 1e-12);
        EXPECT_GE(box.lo[j], -1e-12);
      }
    }
  }
}

TEST(RandomPrefBoxTest, OversizedBoxIsShrunk) {
  Rng rng(5);
  // side 0.2 in 11 dims: total 2.2 > 1, must shrink but stay valid.
  const PrefBox box = RandomPrefBox(11, 0.2, rng);
  EXPECT_TRUE(box.InsideSimplex(1e-9));
}

TEST(RandomElongatedPrefBoxTest, VolumePreserved) {
  Rng rng(6);
  const size_t dim = 3;
  const double sigma = 0.05;
  for (double gamma : {0.25, 0.5, 1.0, 2.0, 4.0}) {
    const PrefBox box = RandomElongatedPrefBox(dim, sigma, gamma, rng);
    double volume = 1.0;
    int long_sides = 0;
    for (size_t j = 0; j < dim; ++j) {
      const double side = box.hi[j] - box.lo[j];
      volume *= side;
      if (side > sigma * 1.01 || side < sigma * 0.99) ++long_sides;
    }
    EXPECT_NEAR(volume, std::pow(sigma, 3.0), 1e-10) << "gamma " << gamma;
    if (gamma != 1.0) {
      EXPECT_GE(long_sides, 1);
    }
  }
}

}  // namespace
}  // namespace toprr
