#include "data/stats.h"

#include <cmath>

#include <gtest/gtest.h>

#include "data/generator.h"

namespace toprr {
namespace {

TEST(StatsTest, ColumnStatsKnownValues) {
  const Dataset ds = Dataset::FromRows(
      {Vec{0.0, 2.0}, Vec{1.0, 2.0}, Vec{2.0, 2.0}});
  const auto stats = ComputeColumnStats(ds);
  ASSERT_EQ(stats.size(), 2u);
  EXPECT_DOUBLE_EQ(stats[0].min, 0.0);
  EXPECT_DOUBLE_EQ(stats[0].max, 2.0);
  EXPECT_DOUBLE_EQ(stats[0].mean, 1.0);
  EXPECT_NEAR(stats[0].stddev, std::sqrt(2.0 / 3.0), 1e-12);
  EXPECT_DOUBLE_EQ(stats[1].stddev, 0.0);
}

TEST(StatsTest, PerfectCorrelation) {
  Dataset ds;
  for (int i = 0; i < 20; ++i) {
    ds.Append(Vec{i * 0.05, i * 0.05});
  }
  const Matrix corr = CorrelationMatrix(ds);
  EXPECT_NEAR(corr.At(0, 1), 1.0, 1e-12);
  EXPECT_DOUBLE_EQ(corr.At(0, 0), 1.0);
  EXPECT_NEAR(MeanPairwiseCorrelation(ds), 1.0, 1e-12);
}

TEST(StatsTest, PerfectAnticorrelation) {
  Dataset ds;
  for (int i = 0; i < 20; ++i) {
    ds.Append(Vec{i * 0.05, 1.0 - i * 0.05});
  }
  EXPECT_NEAR(MeanPairwiseCorrelation(ds), -1.0, 1e-12);
}

TEST(StatsTest, ConstantColumnYieldsZeroCorrelation) {
  Dataset ds;
  for (int i = 0; i < 10; ++i) ds.Append(Vec{i * 0.1, 0.5});
  const Matrix corr = CorrelationMatrix(ds);
  EXPECT_DOUBLE_EQ(corr.At(0, 1), 0.0);
  EXPECT_DOUBLE_EQ(corr.At(1, 1), 1.0);
}

TEST(StatsTest, GeneratorShapesViaLibraryStats) {
  EXPECT_GT(MeanPairwiseCorrelation(GenerateSynthetic(
                3000, 3, Distribution::kCorrelated, 1)),
            0.6);
  EXPECT_LT(MeanPairwiseCorrelation(GenerateSynthetic(
                3000, 3, Distribution::kAnticorrelated, 1)),
            -0.2);
  EXPECT_NEAR(MeanPairwiseCorrelation(GenerateSynthetic(
                  3000, 3, Distribution::kIndependent, 1)),
              0.0, 0.08);
}

TEST(StatsTest, DescribeDatasetMentionsShape) {
  const Dataset ds = GenerateSynthetic(100, 2, Distribution::kIndependent,
                                       2);
  const std::string text = DescribeDataset(ds);
  EXPECT_NE(text.find("n=100"), std::string::npos);
  EXPECT_NE(text.find("col1"), std::string::npos);
}

TEST(StatsTest, SymmetricMatrix) {
  const Dataset ds = GenerateSynthetic(500, 4, Distribution::kAnticorrelated,
                                       3);
  const Matrix corr = CorrelationMatrix(ds);
  for (size_t a = 0; a < 4; ++a) {
    for (size_t b = 0; b < 4; ++b) {
      EXPECT_DOUBLE_EQ(corr.At(a, b), corr.At(b, a));
      EXPECT_LE(std::abs(corr.At(a, b)), 1.0 + 1e-12);
    }
  }
}

}  // namespace
}  // namespace toprr
