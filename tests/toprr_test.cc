#include "core/toprr.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "data/generator.h"
#include "topk/topk.h"

namespace toprr {
namespace {

Dataset PaperFigure1Dataset() {
  return Dataset::FromRows({
      Vec{0.9, 0.4},  // p1
      Vec{0.7, 0.9},  // p2
      Vec{0.6, 0.2},  // p3
      Vec{0.3, 0.8},  // p4
      Vec{0.2, 0.3},  // p5
      Vec{0.1, 0.1},  // p6
  });
}

PrefBox Interval(double lo, double hi) {
  PrefBox box;
  box.lo = Vec{lo};
  box.hi = Vec{hi};
  return box;
}

// Ground truth by dense sampling of the (1-D) preference interval: o is
// top-ranking iff S_w(o) >= TopK(w) at every sampled w.
bool BruteForceTopRanking(const Dataset& ds, int k, double wlo, double whi,
                          const Vec& o, int samples = 400) {
  for (int s = 0; s <= samples; ++s) {
    const double x = wlo + (whi - wlo) * s / samples;
    const Vec w{x, 1.0 - x};
    const TopkResult topk = ComputeTopK(ds, w, k);
    if (Dot(w, o) < topk.KthScore() - 1e-12) return false;
  }
  return true;
}

TEST(ToprrTest, PaperExampleVallVertices) {
  // Paper Sec. 3.3: Vall = {0.2, 0.4, 2/3, 0.8} for k=3, wR=[0.2,0.8].
  const Dataset ds = PaperFigure1Dataset();
  ToprrOptions options;
  options.method = ToprrMethod::kTas;
  const ToprrResult r = SolveToprr(ds, 3, Interval(0.2, 0.8), options);
  ASSERT_FALSE(r.timed_out);
  ASSERT_EQ(r.vall.size(), 4u);
  std::vector<double> xs;
  for (const Vec& v : r.vall) xs.push_back(v[0]);
  std::sort(xs.begin(), xs.end());
  EXPECT_NEAR(xs[0], 0.2, 1e-9);
  EXPECT_NEAR(xs[1], 0.4, 1e-9);
  EXPECT_NEAR(xs[2], 2.0 / 3.0, 1e-9);
  EXPECT_NEAR(xs[3], 0.8, 1e-9);
}

TEST(ToprrTest, PaperExampleImpactHalfspaceOffsets) {
  // TopK scores at the four Vall vertices (hand-computed): 0.5 at w=0.2,
  // 0.6 at w=0.4, 7/15 at w=2/3 (p3/p4 tie), 0.52 at w=0.8 (p3).
  const Dataset ds = PaperFigure1Dataset();
  const ToprrResult r = SolveToprr(ds, 3, Interval(0.2, 0.8));
  ASSERT_EQ(r.impact_halfspaces.size(), 4u);
  // Each halfspace is (-w).o <= -kth; recover kth by negating offsets.
  std::vector<double> kth;
  for (const Halfspace& h : r.impact_halfspaces) kth.push_back(-h.offset);
  std::sort(kth.begin(), kth.end());
  EXPECT_NEAR(kth[0], 7.0 / 15.0, 1e-9);
  EXPECT_NEAR(kth[1], 0.5, 1e-9);
  EXPECT_NEAR(kth[2], 0.52, 1e-9);
  EXPECT_NEAR(kth[3], 0.6, 1e-9);
}

TEST(ToprrTest, PaperExampleMembership) {
  const Dataset ds = PaperFigure1Dataset();
  const ToprrResult r = SolveToprr(ds, 3, Interval(0.2, 0.8));
  // The top corner is always inside.
  EXPECT_TRUE(r.Contains(Vec{1.0, 1.0}));
  // p2 = (0.7, 0.9) is in the top-3 everywhere in [0.2, 0.8] (Fig 1d).
  EXPECT_TRUE(r.Contains(Vec{0.7, 0.9}));
  // p6 = (0.1, 0.1) never is.
  EXPECT_FALSE(r.Contains(Vec{0.1, 0.1}));
  // p4 = (0.3, 0.8) drops out of the top-3 for speed-heavy weights.
  EXPECT_FALSE(r.Contains(Vec{0.3, 0.8}));
}

TEST(ToprrTest, MatchesBruteForceOnGrid) {
  const Dataset ds = PaperFigure1Dataset();
  for (int k : {1, 2, 3, 4}) {
    const ToprrResult r = SolveToprr(ds, k, Interval(0.2, 0.8));
    for (int gx = 0; gx <= 25; ++gx) {
      for (int gy = 0; gy <= 25; ++gy) {
        const Vec o{gx / 25.0, gy / 25.0};
        // Skip points too close to the region boundary.
        double closest = 1e9;
        for (const Halfspace& h : r.impact_halfspaces) {
          closest = std::min(closest,
                             std::abs(h.Violation(o)) / h.normal.Norm());
        }
        if (closest < 1e-3) continue;
        EXPECT_EQ(r.Contains(o),
                  BruteForceTopRanking(ds, k, 0.2, 0.8, o))
            << "k=" << k << " o=" << o.ToString();
      }
    }
  }
}

TEST(ToprrTest, GeometryVerticesInsideRegion) {
  const Dataset ds = PaperFigure1Dataset();
  const ToprrResult r = SolveToprr(ds, 3, Interval(0.2, 0.8));
  ASSERT_FALSE(r.degenerate);
  ASSERT_GE(r.vertices.size(), 3u);
  for (const Vec& v : r.vertices) {
    EXPECT_TRUE(r.Contains(v, 1e-6));
  }
  // The gray region of Fig. 1(b) contains p2 and the top corner as
  // vertices of the option space; the region's vertices must include
  // (1,1)'s corner? No -- but every vertex is inside the unit box.
  for (const Vec& v : r.vertices) {
    EXPECT_GE(v[0], -1e-9);
    EXPECT_LE(v[0], 1.0 + 1e-9);
    EXPECT_GE(v[1], -1e-9);
    EXPECT_LE(v[1], 1.0 + 1e-9);
  }
}

TEST(ToprrTest, AllMethodsAgreeOnMembership) {
  const Dataset ds = GenerateSynthetic(200, 3, Distribution::kIndependent,
                                       100);
  PrefBox box;
  box.lo = Vec{0.25, 0.30};
  box.hi = Vec{0.31, 0.36};
  const int k = 5;
  ToprrOptions pac;
  pac.method = ToprrMethod::kPac;
  ToprrOptions tas;
  tas.method = ToprrMethod::kTas;
  ToprrOptions star;
  star.method = ToprrMethod::kTasStar;
  const ToprrResult rp = SolveToprr(ds, k, box, pac);
  const ToprrResult rt = SolveToprr(ds, k, box, tas);
  const ToprrResult rs = SolveToprr(ds, k, box, star);
  ASSERT_FALSE(rp.timed_out);
  ASSERT_FALSE(rt.timed_out);
  ASSERT_FALSE(rs.timed_out);
  Rng rng(101);
  int checked = 0;
  for (int trial = 0; trial < 3000; ++trial) {
    const Vec o{rng.Uniform(), rng.Uniform(), rng.Uniform()};
    // Only judge points with clear margin in the TAS* region.
    double closest = 1e9;
    for (const Halfspace& h : rs.impact_halfspaces) {
      closest =
          std::min(closest, std::abs(h.Violation(o)) / h.normal.Norm());
    }
    if (closest < 1e-6) continue;
    ++checked;
    const bool expected = rs.Contains(o);
    EXPECT_EQ(rt.Contains(o), expected) << o.ToString();
    EXPECT_EQ(rp.Contains(o), expected) << o.ToString();
  }
  EXPECT_GT(checked, 1000);
}

TEST(ToprrTest, TopCornerAlwaysContained) {
  Rng rng(102);
  for (int trial = 0; trial < 5; ++trial) {
    const size_t d = 2 + static_cast<size_t>(trial % 3);
    const Dataset ds = GenerateSynthetic(
        300, d, Distribution::kIndependent, 200 + trial);
    const PrefBox box = RandomPrefBox(d - 1, 0.05, rng);
    const ToprrResult r = SolveToprr(ds, 5, box);
    ASSERT_FALSE(r.timed_out);
    EXPECT_TRUE(r.Contains(Vec(d, 1.0)));
  }
}

TEST(ToprrTest, SmallerKShrinksRegion) {
  // Monotonicity (paper Sec. 3.1): the k' < k region is a subset.
  const Dataset ds = GenerateSynthetic(300, 3, Distribution::kIndependent,
                                       103);
  PrefBox box;
  box.lo = Vec{0.2, 0.2};
  box.hi = Vec{0.26, 0.26};
  const ToprrResult r1 = SolveToprr(ds, 1, box);
  const ToprrResult r5 = SolveToprr(ds, 5, box);
  const ToprrResult r10 = SolveToprr(ds, 10, box);
  Rng rng(104);
  for (int trial = 0; trial < 2000; ++trial) {
    const Vec o{rng.Uniform(), rng.Uniform(), rng.Uniform()};
    if (r1.Contains(o)) {
      EXPECT_TRUE(r5.Contains(o, 1e-7)) << o.ToString();
    }
    if (r5.Contains(o)) {
      EXPECT_TRUE(r10.Contains(o, 1e-7)) << o.ToString();
    }
  }
}

TEST(ToprrTest, LargerRegionShrinksResult) {
  // A superset preference region imposes a superset of constraints.
  const Dataset ds = GenerateSynthetic(300, 3, Distribution::kIndependent,
                                       105);
  PrefBox small;
  small.lo = Vec{0.22, 0.22};
  small.hi = Vec{0.24, 0.24};
  PrefBox large;
  large.lo = Vec{0.20, 0.20};
  large.hi = Vec{0.26, 0.26};
  const ToprrResult rs = SolveToprr(ds, 5, small);
  const ToprrResult rl = SolveToprr(ds, 5, large);
  Rng rng(106);
  for (int trial = 0; trial < 2000; ++trial) {
    const Vec o{rng.Uniform(), rng.Uniform(), rng.Uniform()};
    if (rl.Contains(o)) {
      EXPECT_TRUE(rs.Contains(o, 1e-7)) << o.ToString();
    }
  }
}

TEST(ToprrTest, ImpactOffsetsMatchFullDatasetTopK) {
  // Each Vall vertex's halfspace offset must equal the k-th score over the
  // FULL dataset (i.e., the r-skyband filter lost nothing).
  const Dataset ds = GenerateSynthetic(500, 3, Distribution::kIndependent,
                                       107);
  PrefBox box;
  box.lo = Vec{0.3, 0.25};
  box.hi = Vec{0.36, 0.31};
  const int k = 7;
  const ToprrResult r = SolveToprr(ds, k, box);
  for (const Vec& v : r.vall) {
    const Vec w = FullWeight(v);
    const TopkResult full = ComputeTopK(ds, w, k);
    // Find a halfspace with this weight vector.
    bool found = false;
    for (const Halfspace& h : r.impact_halfspaces) {
      bool same_w = true;
      for (size_t j = 0; j < w.dim(); ++j) {
        if (std::abs(h.normal[j] + w[j]) > 1e-9) {
          same_w = false;
          break;
        }
      }
      if (same_w) {
        EXPECT_NEAR(-h.offset, full.KthScore(), 1e-9);
        found = true;
        break;
      }
    }
    EXPECT_TRUE(found) << "no impact halfspace for Vall vertex "
                       << v.ToString();
  }
}

TEST(ToprrTest, StatsArePopulated) {
  const Dataset ds = PaperFigure1Dataset();
  const ToprrResult r = SolveToprr(ds, 3, Interval(0.2, 0.8));
  EXPECT_GT(r.stats.candidates_after_filter, 0u);
  EXPECT_GT(r.stats.regions_tested, 0u);
  EXPECT_GT(r.stats.vall_unique, 0u);
  EXPECT_GE(r.stats.total_seconds, 0.0);
  EXPECT_FALSE(r.stats.DebugString().empty());
}

TEST(ToprrTest, MethodNames) {
  EXPECT_STREQ(ToprrMethodName(ToprrMethod::kPac), "PAC");
  EXPECT_STREQ(ToprrMethodName(ToprrMethod::kTas), "TAS");
  EXPECT_STREQ(ToprrMethodName(ToprrMethod::kTasStar), "TAS*");
}

}  // namespace
}  // namespace toprr
