#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/flags.h"
#include "common/logging.h"
#include "common/rng.h"
#include "common/strings.h"
#include "common/timer.h"

namespace toprr {
namespace {

TEST(StringsTest, Split) {
  EXPECT_EQ(Split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(Split("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
}

TEST(StringsTest, Trim) {
  EXPECT_EQ(Trim("  hi \t"), "hi");
  EXPECT_EQ(Trim("hi"), "hi");
  EXPECT_EQ(Trim("   "), "");
}

TEST(StringsTest, Join) {
  EXPECT_EQ(Join({"a", "b"}, ", "), "a, b");
  EXPECT_EQ(Join({}, ","), "");
}

TEST(StringsTest, FormatDouble) {
  EXPECT_EQ(FormatDouble(3.14159, 3), "3.14");
  EXPECT_EQ(FormatDouble(1000.0, 4), "1000");
}

TEST(StringsTest, FormatSeconds) {
  EXPECT_EQ(FormatSeconds(1.5), "1.50s");
  EXPECT_EQ(FormatSeconds(0.0123), "12.3ms");
}

TEST(RngTest, DeterminismAndRanges) {
  Rng a(5);
  Rng b(5);
  for (int i = 0; i < 100; ++i) {
    const double u = a.Uniform();
    EXPECT_DOUBLE_EQ(u, b.Uniform());
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
  for (int i = 0; i < 100; ++i) {
    const int64_t v = a.UniformInt(3, 7);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 7);
  }
  const double x = a.Uniform(2.0, 4.0);
  EXPECT_GE(x, 2.0);
  EXPECT_LT(x, 4.0);
}

TEST(TimerTest, MeasuresForwardTime) {
  Timer t;
  volatile double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink += i;
  EXPECT_GE(t.Seconds(), 0.0);
  EXPECT_GE(t.Millis(), t.Seconds());
  t.Reset();
  EXPECT_LT(t.Seconds(), 1.0);
}

TEST(FlagsTest, ParsesTypedFlags) {
  FlagParser flags;
  int n = 0;
  int64_t big = 0;
  double x = 0.0;
  bool b = false;
  std::string s;
  flags.AddInt("n", &n, "");
  flags.AddInt("big", &big, "");
  flags.AddDouble("x", &x, "");
  flags.AddBool("b", &b, "");
  flags.AddString("s", &s, "");

  const char* argv_in[] = {"prog", "--n=5",  "--big", "123456789012",
                           "--x=1.5", "--b",    "--s=hello", "positional"};
  char* argv[8];
  std::vector<std::string> storage;
  for (int i = 0; i < 8; ++i) {
    storage.emplace_back(argv_in[i]);
  }
  for (int i = 0; i < 8; ++i) {
    argv[i] = storage[i].data();
  }
  int argc = 8;
  ASSERT_TRUE(flags.Parse(&argc, argv));
  EXPECT_EQ(n, 5);
  EXPECT_EQ(big, 123456789012LL);
  EXPECT_DOUBLE_EQ(x, 1.5);
  EXPECT_TRUE(b);
  EXPECT_EQ(s, "hello");
  // Positional arg preserved.
  EXPECT_EQ(argc, 2);
  EXPECT_STREQ(argv[1], "positional");
}

TEST(FlagsTest, UnknownFlagsPassThrough) {
  FlagParser flags;
  int n = 0;
  flags.AddInt("n", &n, "");
  std::vector<std::string> storage = {"prog", "--benchmark_filter=all",
                                      "--n=3"};
  char* argv[3];
  for (int i = 0; i < 3; ++i) argv[i] = storage[i].data();
  int argc = 3;
  ASSERT_TRUE(flags.Parse(&argc, argv));
  EXPECT_EQ(n, 3);
  EXPECT_EQ(argc, 2);
  EXPECT_STREQ(argv[1], "--benchmark_filter=all");
}

TEST(FlagsTest, BadValueFails) {
  FlagParser flags;
  int n = 0;
  flags.AddInt("n", &n, "");
  std::vector<std::string> storage = {"prog", "--n=abc"};
  char* argv[2];
  for (int i = 0; i < 2; ++i) argv[i] = storage[i].data();
  int argc = 2;
  EXPECT_FALSE(flags.Parse(&argc, argv));
}

TEST(FlagsTest, HelpStringListsFlags) {
  FlagParser flags;
  int n = 0;
  flags.AddInt("n", &n, "dataset size");
  EXPECT_NE(flags.HelpString().find("dataset size"), std::string::npos);
}

TEST(LoggingTest, ParseLogLevel) {
  LogLevel level;
  EXPECT_TRUE(ParseLogLevel("info", &level));
  EXPECT_EQ(level, LogLevel::kInfo);
  EXPECT_TRUE(ParseLogLevel("WARNING", &level));
  EXPECT_EQ(level, LogLevel::kWarning);
  EXPECT_TRUE(ParseLogLevel("off", &level));
  EXPECT_EQ(level, LogLevel::kOff);
  EXPECT_FALSE(ParseLogLevel("chatty", &level));
}

}  // namespace
}  // namespace toprr
