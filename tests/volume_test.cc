#include "geom/volume.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace toprr {
namespace {

TEST(PolytopeVolumeTest, UnitSquare) {
  const auto hs = BoxHalfspaces(Vec{0.0, 0.0}, Vec{1.0, 1.0});
  EXPECT_NEAR(PolytopeVolume(hs, 2), 1.0, 1e-9);
}

TEST(PolytopeVolumeTest, Box3D) {
  const auto hs = BoxHalfspaces(Vec{0.0, 0.5, 0.2}, Vec{0.5, 1.0, 0.4});
  EXPECT_NEAR(PolytopeVolume(hs, 3), 0.5 * 0.5 * 0.2, 1e-9);
}

TEST(PolytopeVolumeTest, Simplex2D) {
  std::vector<Halfspace> hs = {
      Halfspace(Vec{-1.0, 0.0}, 0.0),
      Halfspace(Vec{0.0, -1.0}, 0.0),
      Halfspace(Vec{1.0, 1.0}, 1.0),
  };
  EXPECT_NEAR(PolytopeVolume(hs, 2), 0.5, 1e-9);
}

TEST(PolytopeVolumeTest, EmptyIntersection) {
  std::vector<Halfspace> hs = {
      Halfspace(Vec{1.0, 0.0}, 0.0),
      Halfspace(Vec{-1.0, 0.0}, -1.0),
      Halfspace(Vec{0.0, 1.0}, 1.0),
      Halfspace(Vec{0.0, -1.0}, 0.0),
  };
  EXPECT_DOUBLE_EQ(PolytopeVolume(hs, 2), 0.0);
}

TEST(PolytopeVolumeTest, ClippedBoxMatchesMonteCarlo) {
  Rng rng(7);
  for (int trial = 0; trial < 6; ++trial) {
    const size_t d = 2 + static_cast<size_t>(trial % 3);
    std::vector<Halfspace> hs = BoxHalfspaces(Vec(d, 0.0), Vec(d, 1.0));
    for (int extra = 0; extra < 3; ++extra) {
      Vec n(d);
      for (size_t j = 0; j < d; ++j) n[j] = rng.Uniform(-1.0, 1.0);
      if (n.Norm() < 0.3) continue;
      hs.emplace_back(n, Dot(n, Vec(d, 0.5)) + rng.Uniform(0.1, 0.4));
    }
    const double exact = PolytopeVolume(hs, d);
    const double mc =
        EstimatePolytopeVolume(hs, Vec(d, 0.0), Vec(d, 1.0), 200000, rng);
    EXPECT_NEAR(mc, exact, 0.02) << "trial " << trial;
    EXPECT_GT(exact, 0.0);
  }
}

TEST(MonteCarloVolumeTest, BoxFractionExact) {
  Rng rng(8);
  // Halfspace x <= 0.25 within the unit square: volume 0.25.
  std::vector<Halfspace> hs = {Halfspace(Vec{1.0, 0.0}, 0.25)};
  const double mc =
      EstimatePolytopeVolume(hs, Vec{0.0, 0.0}, Vec{1.0, 1.0}, 100000, rng);
  EXPECT_NEAR(mc, 0.25, 0.01);
}

TEST(MonteCarloVolumeTest, ScalesWithBoundingBox) {
  Rng rng(9);
  std::vector<Halfspace> hs;  // no constraints: volume = box volume
  const double mc =
      EstimatePolytopeVolume(hs, Vec{0.0, 0.0}, Vec{2.0, 3.0}, 1000, rng);
  EXPECT_DOUBLE_EQ(mc, 6.0);
}

}  // namespace
}  // namespace toprr
