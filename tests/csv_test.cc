#include "data/csv.h"

#include <cstdio>
#include <fstream>

#include <gtest/gtest.h>

#include "data/generator.h"

namespace toprr {
namespace {

class CsvTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "/toprr_csv_test.csv";
  }
  void TearDown() override { std::remove(path_.c_str()); }

  std::string path_;
};

TEST_F(CsvTest, RoundTrip) {
  const Dataset original = GenerateSynthetic(50, 3,
                                             Distribution::kIndependent, 4);
  ASSERT_TRUE(WriteCsv(path_, original, {"a", "b", "c"}));
  const auto loaded = ReadCsv(path_);
  ASSERT_TRUE(loaded.has_value());
  ASSERT_EQ(loaded->size(), original.size());
  ASSERT_EQ(loaded->dim(), original.dim());
  for (size_t i = 0; i < original.size(); ++i) {
    for (size_t j = 0; j < original.dim(); ++j) {
      EXPECT_NEAR(loaded->At(i, j), original.At(i, j), 1e-9);
    }
  }
}

TEST_F(CsvTest, HeaderlessAndColumnSelection) {
  {
    std::ofstream out(path_);
    out << "1,2,3\n4,5,6\n";
  }
  CsvReadOptions options;
  options.has_header = false;
  options.columns = {2, 0};
  const auto ds = ReadCsv(path_, options);
  ASSERT_TRUE(ds.has_value());
  ASSERT_EQ(ds->size(), 2u);
  ASSERT_EQ(ds->dim(), 2u);
  EXPECT_DOUBLE_EQ(ds->At(0, 0), 3.0);
  EXPECT_DOUBLE_EQ(ds->At(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(ds->At(1, 0), 6.0);
}

TEST_F(CsvTest, SkipsBlankLines) {
  {
    std::ofstream out(path_);
    out << "x,y\n1,2\n\n3,4\n";
  }
  const auto ds = ReadCsv(path_);
  ASSERT_TRUE(ds.has_value());
  EXPECT_EQ(ds->size(), 2u);
}

TEST_F(CsvTest, BadCellFails) {
  {
    std::ofstream out(path_);
    out << "x,y\n1,oops\n";
  }
  EXPECT_FALSE(ReadCsv(path_).has_value());
}

TEST_F(CsvTest, MissingFileFails) {
  EXPECT_FALSE(ReadCsv("/nonexistent/file.csv").has_value());
}

TEST_F(CsvTest, MissingColumnFails) {
  {
    std::ofstream out(path_);
    out << "x\n1\n";
  }
  CsvReadOptions options;
  options.columns = {0, 3};
  EXPECT_FALSE(ReadCsv(path_, options).has_value());
}

}  // namespace
}  // namespace toprr
