#include "geom/hyperplane.h"

#include <gtest/gtest.h>

namespace toprr {
namespace {

TEST(HyperplaneTest, EvalAndClassify) {
  const Hyperplane h(Vec{1.0, 1.0}, 1.0);  // x + y = 1
  EXPECT_DOUBLE_EQ(h.Eval(Vec{0.5, 0.5}), 0.0);
  EXPECT_GT(h.Eval(Vec{1.0, 1.0}), 0.0);
  EXPECT_LT(h.Eval(Vec{0.0, 0.0}), 0.0);
  EXPECT_EQ(h.Classify(Vec{0.5, 0.5}, 1e-9), Side::kOn);
  EXPECT_EQ(h.Classify(Vec{1.0, 1.0}, 1e-9), Side::kAbove);
  EXPECT_EQ(h.Classify(Vec{0.0, 0.0}, 1e-9), Side::kBelow);
}

TEST(HyperplaneTest, ClassifyTolerance) {
  const Hyperplane h(Vec{1.0, 0.0}, 0.0);
  EXPECT_EQ(h.Classify(Vec{1e-12, 0.0}, 1e-9), Side::kOn);
  EXPECT_EQ(h.Classify(Vec{1e-6, 0.0}, 1e-9), Side::kAbove);
}

TEST(HyperplaneTest, Normalize) {
  Hyperplane h(Vec{3.0, 4.0}, 10.0);
  h.Normalize();
  EXPECT_NEAR(h.normal.Norm(), 1.0, 1e-12);
  EXPECT_NEAR(h.offset, 2.0, 1e-12);
  // Same locus: (0.4, 2.2)... pick a point on the original plane.
  EXPECT_NEAR(h.Eval(Vec{2.0, 1.0}), 0.0, 1e-12);
}

TEST(HalfspaceTest, ContainsAndViolation) {
  const Halfspace h(Vec{1.0, 0.0}, 2.0);  // x <= 2
  EXPECT_TRUE(h.Contains(Vec{1.0, 5.0}));
  EXPECT_TRUE(h.Contains(Vec{2.0, 0.0}));
  EXPECT_FALSE(h.Contains(Vec{2.5, 0.0}));
  EXPECT_DOUBLE_EQ(h.Violation(Vec{3.0, 0.0}), 1.0);
  EXPECT_DOUBLE_EQ(h.Violation(Vec{1.0, 0.0}), -1.0);
}

TEST(HalfspaceTest, Boundary) {
  const Halfspace h(Vec{0.0, 1.0}, 3.0);
  const Hyperplane b = h.Boundary();
  EXPECT_DOUBLE_EQ(b.Eval(Vec{7.0, 3.0}), 0.0);
}

TEST(BoxHalfspacesTest, UnitSquare) {
  const auto hs = BoxHalfspaces(Vec{0.0, 0.0}, Vec{1.0, 1.0});
  ASSERT_EQ(hs.size(), 4u);
  const Vec inside{0.5, 0.5};
  const Vec outside{1.5, 0.5};
  for (const Halfspace& h : hs) EXPECT_TRUE(h.Contains(inside));
  int violated = 0;
  for (const Halfspace& h : hs) {
    if (!h.Contains(outside)) ++violated;
  }
  EXPECT_EQ(violated, 1);
}

TEST(BoxHalfspacesTest, CornersAreOnBoundaries) {
  const auto hs = BoxHalfspaces(Vec{-1.0, 2.0}, Vec{0.0, 3.0});
  const Vec corner{-1.0, 3.0};
  for (const Halfspace& h : hs) {
    EXPECT_TRUE(h.Contains(corner, 1e-12));
  }
}

}  // namespace
}  // namespace toprr
