#include "data/wal.h"

#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace toprr {
namespace {

std::string MakeTempDir() {
  char tmpl[] = "/tmp/toprr_wal_test_XXXXXX";
  const char* dir = ::mkdtemp(tmpl);
  EXPECT_NE(dir, nullptr);
  return dir;
}

void WriteFileBytes(const std::string& path, const std::string& bytes) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), f), bytes.size());
  std::fclose(f);
}

std::string ReadFileBytes(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  EXPECT_NE(f, nullptr);
  if (f == nullptr) return "";
  std::string bytes;
  char buf[4096];
  size_t got;
  while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0) bytes.append(buf, got);
  std::fclose(f);
  return bytes;
}

TEST(Crc32cTest, KnownVectors) {
  // The iSCSI test vector (RFC 3720 appendix / every CRC32C impl).
  EXPECT_EQ(Crc32c("123456789", 9), 0xE3069283u);
  EXPECT_EQ(Crc32c("", 0), 0u);
  // 32 bytes of zeros, another standard vector.
  const std::string zeros(32, '\0');
  EXPECT_EQ(Crc32c(zeros.data(), zeros.size()), 0x8A9136AAu);
}

TEST(Crc32cTest, SeedChainsIncrementally) {
  const std::string text = "hello, write-ahead world";
  const uint32_t whole = Crc32c(text.data(), text.size());
  const uint32_t first = Crc32c(text.data(), 10);
  const uint32_t chained = Crc32c(text.data() + 10, text.size() - 10, first);
  EXPECT_EQ(chained, whole);
}

TEST(FsyncPolicyTest, ParseAndName) {
  FsyncPolicy policy;
  EXPECT_TRUE(ParseFsyncPolicy("always", &policy));
  EXPECT_EQ(policy, FsyncPolicy::kAlways);
  EXPECT_TRUE(ParseFsyncPolicy("Batched", &policy));
  EXPECT_EQ(policy, FsyncPolicy::kBatched);
  EXPECT_TRUE(ParseFsyncPolicy("OFF", &policy));
  EXPECT_EQ(policy, FsyncPolicy::kOff);
  EXPECT_FALSE(ParseFsyncPolicy("sometimes", &policy));
  EXPECT_STREQ(FsyncPolicyName(FsyncPolicy::kBatched), "batched");
}

TEST(WalFramingTest, WriteThenReadRoundTrips) {
  const std::string dir = MakeTempDir();
  const std::string path = dir + "/wal.log";
  std::vector<std::string> payloads = {"first", "", "third record",
                                       std::string(5000, 'x')};
  {
    std::string error;
    auto file = PosixWalFile::OpenAppend(path, &error);
    ASSERT_NE(file, nullptr) << error;
    WalWriter writer(std::move(file), FsyncPolicy::kAlways);
    for (const std::string& payload : payloads) {
      ASSERT_TRUE(writer.AppendRecord(payload)) << writer.last_error();
    }
    EXPECT_EQ(writer.appends(), payloads.size());
    EXPECT_EQ(writer.syncs(), payloads.size());  // kAlways: one per append
  }
  const WalReadResult result = ReadWalRecords(path);
  EXPECT_TRUE(result.ok);
  EXPECT_FALSE(result.torn_tail);
  ASSERT_EQ(result.records.size(), payloads.size());
  for (size_t i = 0; i < payloads.size(); ++i) {
    EXPECT_EQ(result.records[i], payloads[i]);
  }
  EXPECT_EQ(result.valid_bytes, ReadFileBytes(path).size());
}

TEST(WalFramingTest, MissingFileReadsAsEmptyLog) {
  const WalReadResult result =
      ReadWalRecords("/tmp/toprr_wal_test_does_not_exist.log");
  EXPECT_TRUE(result.ok);
  EXPECT_FALSE(result.torn_tail);
  EXPECT_TRUE(result.records.empty());
}

TEST(WalFramingTest, BatchedPolicySyncsOnThreshold) {
  const std::string dir = MakeTempDir();
  std::string error;
  auto file = PosixWalFile::OpenAppend(dir + "/wal.log", &error);
  ASSERT_NE(file, nullptr) << error;
  // Threshold of 64 bytes: two 20-byte payloads stay unsynced, the third
  // crosses it.
  WalWriter writer(std::move(file), FsyncPolicy::kBatched, 64);
  const std::string payload(20, 'p');
  ASSERT_TRUE(writer.AppendRecord(payload));
  ASSERT_TRUE(writer.AppendRecord(payload));
  EXPECT_EQ(writer.syncs(), 0u);
  ASSERT_TRUE(writer.AppendRecord(payload));
  EXPECT_EQ(writer.syncs(), 1u);
  // An explicit Sync() with nothing unsynced is a no-op.
  ASSERT_TRUE(writer.Sync());
  EXPECT_EQ(writer.syncs(), 1u);
}

// Builds a well-formed two-record log as raw bytes.
std::string TwoRecordLog(std::string* first, std::string* second) {
  *first = "record one payload";
  *second = "the second record";
  std::string bytes;
  FrameWalRecord(*first, &bytes);
  FrameWalRecord(*second, &bytes);
  return bytes;
}

TEST(WalFramingTest, TornHeaderTruncatesToLastValidRecord) {
  const std::string dir = MakeTempDir();
  const std::string path = dir + "/wal.log";
  std::string first, second;
  std::string bytes = TwoRecordLog(&first, &second);
  bytes.append("\x05\x00\x00", 3);  // 3 bytes of a next header
  WriteFileBytes(path, bytes);
  const WalReadResult result = ReadWalRecords(path);
  EXPECT_TRUE(result.ok);
  EXPECT_TRUE(result.torn_tail);
  ASSERT_EQ(result.records.size(), 2u);
  EXPECT_EQ(result.records[1], second);
  EXPECT_EQ(result.valid_bytes, bytes.size() - 3);
}

TEST(WalFramingTest, TornPayloadTruncates) {
  const std::string dir = MakeTempDir();
  const std::string path = dir + "/wal.log";
  std::string first, second;
  std::string bytes = TwoRecordLog(&first, &second);
  std::string torn;
  FrameWalRecord("a payload that will be cut short", &torn);
  bytes.append(torn.substr(0, torn.size() - 5));
  WriteFileBytes(path, bytes);
  const WalReadResult result = ReadWalRecords(path);
  EXPECT_TRUE(result.ok);
  EXPECT_TRUE(result.torn_tail);
  EXPECT_EQ(result.records.size(), 2u);
}

TEST(WalFramingTest, ChecksumMismatchOnFinalFrameIsTornTail) {
  const std::string dir = MakeTempDir();
  const std::string path = dir + "/wal.log";
  std::string first, second;
  std::string bytes = TwoRecordLog(&first, &second);
  bytes.back() ^= 0x40;  // damage the last payload byte
  WriteFileBytes(path, bytes);
  const WalReadResult result = ReadWalRecords(path);
  EXPECT_TRUE(result.ok);
  EXPECT_TRUE(result.torn_tail);
  ASSERT_EQ(result.records.size(), 1u);
  EXPECT_EQ(result.records[0], first);
}

TEST(WalFramingTest, ChecksumMismatchMidLogIsCorruption) {
  const std::string dir = MakeTempDir();
  const std::string path = dir + "/wal.log";
  std::string first, second;
  std::string bytes = TwoRecordLog(&first, &second);
  bytes[kWalHeaderBytes + 3] ^= 0x01;  // damage the FIRST record's payload
  WriteFileBytes(path, bytes);
  const WalReadResult result = ReadWalRecords(path);
  EXPECT_FALSE(result.ok);  // typed rejection, not silent truncation
  EXPECT_TRUE(result.records.empty());
}

TEST(WalFramingTest, GarbageLengthHeaderIsCorruption) {
  const std::string dir = MakeTempDir();
  const std::string path = dir + "/wal.log";
  std::string bytes;
  PutU32(&bytes, 0xFFFFFFFFu);  // implausible length
  PutU32(&bytes, 0x12345678u);
  bytes.append(64, 'g');
  WriteFileBytes(path, bytes);
  const WalReadResult result = ReadWalRecords(path);
  EXPECT_FALSE(result.ok);
  EXPECT_TRUE(result.records.empty());
}

TEST(FaultyFileTest, ShortWritesLeaveATornTail) {
  const std::string dir = MakeTempDir();
  const std::string path = dir + "/wal.log";
  std::string error;
  auto posix = PosixWalFile::OpenAppend(path, &error);
  ASSERT_NE(posix, nullptr) << error;
  FileFaultPlan plan;
  plan.seed = 11;
  plan.short_write_probability = 1.0;  // every append tears
  auto faulty = std::make_unique<FaultyFile>(std::move(posix), plan);
  FaultyFile* telemetry = faulty.get();
  WalWriter writer(std::move(faulty), FsyncPolicy::kOff);
  EXPECT_FALSE(writer.AppendRecord(std::string(200, 'z')));
  EXPECT_EQ(telemetry->short_writes(), 1u);
  // Whatever landed on disk is a torn prefix the reader truncates away.
  const WalReadResult result = ReadWalRecords(path);
  EXPECT_TRUE(result.ok);
  EXPECT_TRUE(result.records.empty());
}

TEST(FaultyFileTest, BitFlipsAreCaughtByTheChecksum) {
  const std::string dir = MakeTempDir();
  const std::string path = dir + "/wal.log";
  std::string error;
  auto posix = PosixWalFile::OpenAppend(path, &error);
  ASSERT_NE(posix, nullptr) << error;
  FileFaultPlan plan;
  plan.seed = 23;
  plan.bit_flip_probability = 1.0;
  auto faulty = std::make_unique<FaultyFile>(std::move(posix), plan);
  FaultyFile* telemetry = faulty.get();
  WalWriter writer(std::move(faulty), FsyncPolicy::kOff);
  EXPECT_TRUE(writer.AppendRecord(std::string(100, 'q')));  // flip is silent
  EXPECT_GE(telemetry->bit_flips(), 1u);
  const WalReadResult result = ReadWalRecords(path);
  // One damaged record at EOF: either the header or the payload took the
  // flip; both read as a torn/damaged tail, never as a valid record.
  EXPECT_TRUE(result.records.empty());
}

TEST(FaultyFileTest, HardFailureAfterByteBudget) {
  const std::string dir = MakeTempDir();
  std::string error;
  auto posix = PosixWalFile::OpenAppend(dir + "/wal.log", &error);
  ASSERT_NE(posix, nullptr) << error;
  FileFaultPlan plan;
  plan.fail_after_bytes = 50;
  auto faulty = std::make_unique<FaultyFile>(std::move(posix), plan);
  FaultyFile* telemetry = faulty.get();
  WalWriter writer(std::move(faulty), FsyncPolicy::kAlways);
  EXPECT_TRUE(writer.AppendRecord(std::string(48, 'a')));
  EXPECT_FALSE(writer.AppendRecord(std::string(48, 'b')));
  EXPECT_EQ(telemetry->hard_failures(), 1u);
  EXPECT_NE(writer.last_error().find("injected"), std::string::npos);
}

}  // namespace
}  // namespace toprr
