#include "geom/halfspace_intersection.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "geom/lp.h"

namespace toprr {
namespace {

bool HasVertexNear(const std::vector<Vec>& vertices, const Vec& target,
                   double tol = 1e-6) {
  for (const Vec& v : vertices) {
    if (ApproxEqual(v, target, tol)) return true;
  }
  return false;
}

TEST(HalfspaceIntersectionTest, UnitSquare) {
  const auto hs = BoxHalfspaces(Vec{0.0, 0.0}, Vec{1.0, 1.0});
  auto result = IntersectHalfspaces(hs, Vec{0.5, 0.5});
  ASSERT_TRUE(result.has_value());
  EXPECT_FALSE(result->unbounded);
  EXPECT_EQ(result->vertices.size(), 4u);
  EXPECT_TRUE(HasVertexNear(result->vertices, Vec{0.0, 0.0}));
  EXPECT_TRUE(HasVertexNear(result->vertices, Vec{1.0, 1.0}));
  EXPECT_EQ(result->active_halfspaces.size(), 4u);
}

TEST(HalfspaceIntersectionTest, RedundantConstraintDropsOut) {
  auto hs = BoxHalfspaces(Vec{0.0, 0.0}, Vec{1.0, 1.0});
  hs.emplace_back(Vec{1.0, 0.0}, 7.0);  // x <= 7, redundant
  auto result = IntersectHalfspaces(hs, Vec{0.5, 0.5});
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->vertices.size(), 4u);
  EXPECT_EQ(
      std::count(result->active_halfspaces.begin(),
                 result->active_halfspaces.end(), hs.size() - 1),
      0);
}

TEST(HalfspaceIntersectionTest, TriangleViaChebyshev) {
  std::vector<Halfspace> hs = {
      Halfspace(Vec{-1.0, 0.0}, 0.0),
      Halfspace(Vec{0.0, -1.0}, 0.0),
      Halfspace(Vec{1.0, 1.0}, 1.0),
  };
  auto result = IntersectHalfspaces(hs, 2);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->vertices.size(), 3u);
  EXPECT_TRUE(HasVertexNear(result->vertices, Vec{0.0, 0.0}));
  EXPECT_TRUE(HasVertexNear(result->vertices, Vec{1.0, 0.0}));
  EXPECT_TRUE(HasVertexNear(result->vertices, Vec{0.0, 1.0}));
}

TEST(HalfspaceIntersectionTest, UnboundedDetected) {
  // Only x >= 0, y >= 0, x + y >= 0.5 -- open toward +infinity.
  std::vector<Halfspace> hs = {
      Halfspace(Vec{-1.0, 0.0}, 0.0),
      Halfspace(Vec{0.0, -1.0}, 0.0),
      Halfspace(Vec{-1.0, -1.0}, -0.5),
  };
  auto result = IntersectHalfspaces(hs, Vec{2.0, 2.0});
  // Either the dual hull is degenerate or the result is flagged unbounded.
  if (result.has_value()) {
    EXPECT_TRUE(result->unbounded);
  }
}

TEST(HalfspaceIntersectionTest, Cube3D) {
  const auto hs = BoxHalfspaces(Vec(3, 0.0), Vec(3, 1.0));
  auto result = IntersectHalfspaces(hs, Vec(3, 0.5));
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->vertices.size(), 8u);
  for (const Vec& v : result->vertices) {
    for (size_t j = 0; j < 3; ++j) {
      EXPECT_TRUE(std::abs(v[j]) < 1e-7 || std::abs(v[j] - 1.0) < 1e-7);
    }
  }
}

TEST(HalfspaceIntersectionTest, InfeasibleViaChebyshev) {
  std::vector<Halfspace> hs = {
      Halfspace(Vec{1.0, 0.0}, 0.0),
      Halfspace(Vec{-1.0, 0.0}, -1.0),
      Halfspace(Vec{0.0, 1.0}, 1.0),
      Halfspace(Vec{0.0, -1.0}, 0.0),
  };
  EXPECT_FALSE(IntersectHalfspaces(hs, 2).has_value());
}

TEST(HalfspaceIntersectionTest, RandomPolytopesVerticesAreFeasibleAndTight) {
  Rng rng(17);
  for (int trial = 0; trial < 12; ++trial) {
    const size_t d = 2 + static_cast<size_t>(trial % 3);  // 2..4
    std::vector<Halfspace> hs = BoxHalfspaces(Vec(d, 0.0), Vec(d, 1.0));
    for (int extra = 0; extra < 5; ++extra) {
      Vec n(d);
      for (size_t j = 0; j < d; ++j) n[j] = rng.Uniform(-1.0, 1.0);
      if (n.Norm() < 0.3) continue;
      // Offset keeps the box center feasible with slack.
      hs.emplace_back(n, Dot(n, Vec(d, 0.5)) + rng.Uniform(0.1, 0.6));
    }
    auto result = IntersectHalfspaces(hs, Vec(d, 0.5));
    ASSERT_TRUE(result.has_value()) << "trial " << trial;
    EXPECT_FALSE(result->unbounded);
    EXPECT_GE(result->vertices.size(), d + 1);
    for (const Vec& v : result->vertices) {
      size_t tight = 0;
      for (const Halfspace& h : hs) {
        const double viol = h.Violation(v);
        EXPECT_LE(viol, 1e-6) << "vertex outside polytope, trial " << trial;
        if (std::abs(viol) <= 1e-6) ++tight;
      }
      EXPECT_GE(tight, d) << "vertex not on >= d facets, trial " << trial;
    }
  }
}

}  // namespace
}  // namespace toprr
