// Round-trip and rejection tests of the serving wire protocol
// (serve/protocol.h). Labeled `serve` through the CMake test glob.
#include "serve/protocol.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "pref/pref_space.h"
#include "pref/region.h"

namespace toprr {
namespace serve {
namespace {

PrefBox Box(std::initializer_list<double> lo,
            std::initializer_list<double> hi) {
  PrefBox box;
  box.lo = Vec(lo);
  box.hi = Vec(hi);
  return box;
}

void ExpectSameVec(const Vec& a, const Vec& b) {
  ASSERT_EQ(a.dim(), b.dim());
  for (size_t i = 0; i < a.dim(); ++i) EXPECT_EQ(a[i], b[i]);
}

void ExpectSameRegion(const PrefRegion& a, const PrefRegion& b) {
  ASSERT_EQ(a.vertices().size(), b.vertices().size());
  for (size_t i = 0; i < a.vertices().size(); ++i) {
    ExpectSameVec(a.vertices()[i], b.vertices()[i]);
  }
  ASSERT_EQ(a.facets().size(), b.facets().size());
  for (size_t i = 0; i < a.facets().size(); ++i) {
    ExpectSameVec(a.facets()[i].halfspace.normal,
                  b.facets()[i].halfspace.normal);
    EXPECT_EQ(a.facets()[i].halfspace.offset, b.facets()[i].halfspace.offset);
    EXPECT_EQ(a.facets()[i].vertex_ids, b.facets()[i].vertex_ids);
  }
}

void ExpectSameQuery(const ToprrQuery& a, const ToprrQuery& b) {
  EXPECT_EQ(a.k, b.k);
  EXPECT_EQ(a.options.method, b.options.method);
  EXPECT_EQ(a.options.use_lemma5, b.options.use_lemma5);
  EXPECT_EQ(a.options.use_lemma7, b.options.use_lemma7);
  EXPECT_EQ(a.options.use_kswitch, b.options.use_kswitch);
  EXPECT_EQ(a.options.use_rskyband_filter, b.options.use_rskyband_filter);
  EXPECT_EQ(a.options.build_geometry, b.options.build_geometry);
  EXPECT_EQ(a.options.collect_scheduler_stats,
            b.options.collect_scheduler_stats);
  EXPECT_EQ(a.options.eps, b.options.eps);
  EXPECT_EQ(a.options.time_budget_seconds, b.options.time_budget_seconds);
  EXPECT_EQ(a.options.max_regions, b.options.max_regions);
  EXPECT_EQ(a.options.geometry_dim_limit, b.options.geometry_dim_limit);
  EXPECT_EQ(a.options.geometry_halfspace_limit,
            b.options.geometry_halfspace_limit);
  EXPECT_EQ(a.options.num_threads, b.options.num_threads);
  ExpectSameRegion(a.region, b.region);
}

TEST(ServeProtocolTest, QueryBatchRoundTrip) {
  std::vector<ToprrQuery> queries;
  {
    ToprrOptions options;
    options.method = ToprrMethod::kTas;
    options.use_lemma5 = false;
    options.eps = 3.25e-11;  // exactly representable, must survive
    options.time_budget_seconds = 1.5;
    options.max_regions = 123456789;
    options.num_threads = 4;
    queries.push_back(
        ToprrQuery::FromBox(7, Box({0.1, 0.2}, {0.15, 0.3}), options));
  }
  {
    ToprrOptions options;
    options.build_geometry = false;
    options.collect_scheduler_stats = false;
    queries.push_back(
        ToprrQuery::FromBox(1, Box({0.3, 0.05, 0.1}, {0.35, 0.1, 0.2}),
                            options));
  }

  const std::string payload = EncodeQueryBatch(queries);
  std::vector<ToprrQuery> decoded;
  std::string error;
  ASSERT_TRUE(DecodeQueryBatch(payload, &decoded, &error)) << error;
  ASSERT_EQ(decoded.size(), queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    SCOPED_TRACE(i);
    ExpectSameQuery(queries[i], decoded[i]);
  }
}

TEST(ServeProtocolTest, RandomQueriesSurviveManyRoundTrips) {
  Rng rng(7);
  for (int trial = 0; trial < 20; ++trial) {
    ToprrOptions options;
    options.eps = rng.Uniform() * 1e-9;
    options.time_budget_seconds = rng.Uniform() * 10;
    std::vector<ToprrQuery> queries{ToprrQuery::FromBox(
        1 + static_cast<int>(rng.Uniform() * 40),
        RandomPrefBox(2 + trial % 3, 0.02, rng), options)};
    std::string error;
    std::vector<ToprrQuery> decoded;
    ASSERT_TRUE(DecodeQueryBatch(EncodeQueryBatch(queries), &decoded, &error))
        << error;
    ASSERT_EQ(decoded.size(), 1u);
    SCOPED_TRACE(trial);
    ExpectSameQuery(queries[0], decoded[0]);
  }
}

TEST(ServeProtocolTest, ResponseBatchRoundTrip) {
  std::vector<ServeResponse> responses(3);
  responses[0].status = ServeStatus::kOk;
  responses[0].degenerate = true;
  responses[0].impact_halfspaces.push_back(
      Halfspace(Vec{0.5, -0.25, 0.125}, -0.75));
  responses[0].vertices.push_back(Vec{0.1, 0.9, 0.3});
  responses[0].stats.total_seconds = 0.125;
  responses[0].stats.candidates_after_filter = 42;
  responses[0].stats.regions_tested = 99;
  responses[0].stats.vall_unique = 17;
  responses[0].stats.tasks_executed = 99;
  responses[0].stats.tasks_stolen = 12;
  responses[0].stats.steal_failures = 3;
  responses[0].stats.cache_lookup = static_cast<uint8_t>(CacheLookup::kHit);
  responses[0].stats.cache_tasks_saved = 57;
  responses[1].status = ServeStatus::kRejectedOverload;
  responses[2].status = ServeStatus::kBudgetExceeded;
  responses[2].stats.regions_tested = 1000;
  responses[2].stats.cache_lookup =
      static_cast<uint8_t>(CacheLookup::kPartial);

  const std::string payload = EncodeResponseBatch(responses);
  std::vector<ServeResponse> decoded;
  std::string error;
  ASSERT_TRUE(DecodeResponseBatch(payload, &decoded, &error)) << error;
  ASSERT_EQ(decoded.size(), responses.size());
  for (size_t i = 0; i < responses.size(); ++i) {
    SCOPED_TRACE(i);
    EXPECT_EQ(decoded[i].status, responses[i].status);
    EXPECT_EQ(decoded[i].degenerate, responses[i].degenerate);
    EXPECT_EQ(decoded[i].geometry_skipped, responses[i].geometry_skipped);
    ASSERT_EQ(decoded[i].impact_halfspaces.size(),
              responses[i].impact_halfspaces.size());
    for (size_t h = 0; h < responses[i].impact_halfspaces.size(); ++h) {
      ExpectSameVec(decoded[i].impact_halfspaces[h].normal,
                    responses[i].impact_halfspaces[h].normal);
      EXPECT_EQ(decoded[i].impact_halfspaces[h].offset,
                responses[i].impact_halfspaces[h].offset);
    }
    ASSERT_EQ(decoded[i].vertices.size(), responses[i].vertices.size());
    EXPECT_EQ(decoded[i].stats.total_seconds,
              responses[i].stats.total_seconds);
    EXPECT_EQ(decoded[i].stats.candidates_after_filter,
              responses[i].stats.candidates_after_filter);
    EXPECT_EQ(decoded[i].stats.regions_tested,
              responses[i].stats.regions_tested);
    EXPECT_EQ(decoded[i].stats.vall_unique, responses[i].stats.vall_unique);
    EXPECT_EQ(decoded[i].stats.tasks_executed,
              responses[i].stats.tasks_executed);
    EXPECT_EQ(decoded[i].stats.tasks_stolen, responses[i].stats.tasks_stolen);
    EXPECT_EQ(decoded[i].stats.steal_failures,
              responses[i].stats.steal_failures);
    EXPECT_EQ(decoded[i].stats.cache_lookup, responses[i].stats.cache_lookup);
    EXPECT_EQ(decoded[i].stats.cache_tasks_saved,
              responses[i].stats.cache_tasks_saved);
  }
}

TEST(ServeProtocolTest, RejectsOutOfRangeCacheLookup) {
  std::vector<ServeResponse> responses(1);
  responses[0].status = ServeStatus::kOk;
  responses[0].stats.cache_lookup = 200;  // not a CacheLookup value
  const std::string payload = EncodeResponseBatch(responses);
  std::vector<ServeResponse> decoded;
  std::string error;
  EXPECT_FALSE(DecodeResponseBatch(payload, &decoded, &error));
}

TEST(ServeProtocolTest, RejectsTruncatedPayloads) {
  const std::vector<ToprrQuery> queries{
      ToprrQuery::FromBox(3, Box({0.1, 0.1}, {0.2, 0.2}))};
  const std::string payload = EncodeQueryBatch(queries);
  // Every proper prefix must decode to an error, never crash or succeed.
  std::vector<ToprrQuery> decoded;
  std::string error;
  for (size_t cut = 0; cut < payload.size(); ++cut) {
    EXPECT_FALSE(
        DecodeQueryBatch(payload.substr(0, cut), &decoded, &error))
        << "prefix of " << cut << " bytes decoded";
    EXPECT_TRUE(decoded.empty());
  }
}

TEST(ServeProtocolTest, RejectsBadMagicVersionAndType) {
  const std::vector<ToprrQuery> queries{
      ToprrQuery::FromBox(3, Box({0.1, 0.1}, {0.2, 0.2}))};
  std::string payload = EncodeQueryBatch(queries);
  std::vector<ToprrQuery> decoded;
  std::string error;

  std::string bad_magic = payload;
  bad_magic[0] = 'X';
  EXPECT_FALSE(DecodeQueryBatch(bad_magic, &decoded, &error));
  EXPECT_NE(error.find("magic"), std::string::npos);

  std::string bad_version = payload;
  bad_version[4] = 99;
  EXPECT_FALSE(DecodeQueryBatch(bad_version, &decoded, &error));
  EXPECT_NE(error.find("version"), std::string::npos);

  // A response payload fed to the query decoder (and vice versa).
  const std::string response_payload = EncodeResponseBatch({});
  EXPECT_FALSE(DecodeQueryBatch(response_payload, &decoded, &error));
  std::vector<ServeResponse> responses;
  EXPECT_FALSE(DecodeResponseBatch(payload, &responses, &error));
}

TEST(ServeProtocolTest, RejectsAbsurdElementCounts) {
  // Header + a count far beyond what the remaining bytes could hold:
  // the decoder must reject before allocating.
  std::string payload = EncodeQueryBatch({});
  // Patch the count field (last 4 bytes of the empty-batch payload).
  payload[payload.size() - 1] = static_cast<char>(0x7f);
  payload[payload.size() - 2] = static_cast<char>(0xff);
  payload[payload.size() - 3] = static_cast<char>(0xff);
  payload[payload.size() - 4] = static_cast<char>(0xff);
  std::vector<ToprrQuery> decoded;
  std::string error;
  EXPECT_FALSE(DecodeQueryBatch(payload, &decoded, &error));
}

TEST(ServeProtocolTest, RejectsTrailingGarbage) {
  const std::vector<ToprrQuery> queries{
      ToprrQuery::FromBox(3, Box({0.1, 0.1}, {0.2, 0.2}))};
  // Random bytes after the last query land in the optional extension
  // block's flags word and are rejected there (unknown bits).
  std::string payload = EncodeQueryBatch(queries);
  payload += "extra";
  std::vector<ToprrQuery> decoded;
  std::string error;
  EXPECT_FALSE(DecodeQueryBatch(payload, &decoded, &error));
  EXPECT_NE(error.find("extension flags"), std::string::npos);
  // Bytes after a WELL-FORMED extension block are trailing garbage.
  payload = EncodeQueryBatch(queries, /*deadline_ms=*/250);
  payload += "x";
  error.clear();
  EXPECT_FALSE(DecodeQueryBatch(payload, &decoded, &error));
  EXPECT_NE(error.find("trailing"), std::string::npos);
}

TEST(ServeProtocolTest, QueryBatchDeadlineRoundTrip) {
  const std::vector<ToprrQuery> queries{
      ToprrQuery::FromBox(3, Box({0.1, 0.1}, {0.2, 0.2}))};
  // No deadline: byte-identical to the pre-deadline encoding, and the
  // 4-arg decoder leaves the out-param at its sentinel.
  const std::string bare = EncodeQueryBatch(queries);
  EXPECT_EQ(bare, EncodeQueryBatch(queries, /*deadline_ms=*/0));
  std::vector<ToprrQuery> decoded;
  uint64_t deadline_ms = 0;
  std::string error;
  ASSERT_TRUE(DecodeQueryBatch(bare, &decoded, &deadline_ms, &error)) << error;
  EXPECT_EQ(deadline_ms, 0u);
  // With a deadline: the extension block rides the wire and decodes.
  const std::string with_deadline =
      EncodeQueryBatch(queries, /*deadline_ms=*/1234);
  EXPECT_GT(with_deadline.size(), bare.size());
  deadline_ms = 0;
  ASSERT_TRUE(
      DecodeQueryBatch(with_deadline, &decoded, &deadline_ms, &error))
      << error;
  EXPECT_EQ(deadline_ms, 1234u);
  ASSERT_EQ(decoded.size(), 1u);
  // The 3-arg (deadline-blind) decoder still accepts the new block, so
  // old decode call sites keep working against new encoders.
  decoded.clear();
  EXPECT_TRUE(DecodeQueryBatch(with_deadline, &decoded, &error)) << error;
  // A truncated extension block (flags present, deadline cut off) is a
  // decode error, not a silently missing deadline.
  std::string truncated = with_deadline;
  truncated.resize(truncated.size() - 3);
  EXPECT_FALSE(DecodeQueryBatch(truncated, &decoded, &deadline_ms, &error));
}

TEST(ServeProtocolTest, PublishIdempotencyRoundTrip) {
  // Token-less publish is byte-identical to the pre-token encoding.
  std::string error;
  const std::string bare = EncodePublish();
  EXPECT_EQ(bare, EncodePublish(/*idempotency_token=*/0, /*publish_id=*/7));
  uint64_t token = 99, publish_id = 99;
  ASSERT_TRUE(DecodePublish(bare, &token, &publish_id, &error)) << error;
  EXPECT_EQ(token, 0u);
  EXPECT_EQ(publish_id, 0u);
  // Token + id round-trip through both decoder arities.
  const std::string stamped = EncodePublish(0xfeedfaceu, 42);
  ASSERT_TRUE(DecodePublish(stamped, &token, &publish_id, &error)) << error;
  EXPECT_EQ(token, 0xfeedfaceu);
  EXPECT_EQ(publish_id, 42u);
  EXPECT_TRUE(DecodePublish(stamped, &error)) << error;
  // Trailing bytes after the idempotency block are rejected.
  std::string garbage = stamped;
  garbage += "z";
  EXPECT_FALSE(DecodePublish(garbage, &token, &publish_id, &error));
}

TEST(ServeProtocolTest, MutationAckIdempotencyEchoRoundTrip) {
  MutationAck ack;
  ack.status = MutationStatus::kOk;
  ack.snapshot_id = 11;
  ack.snapshot_seq = 5;
  ack.live_rows = 100;
  ack.physical_rows = 120;
  ack.staged_inserts = 0;
  ack.staged_deletes = 0;
  ack.idempotency_token = 0xdeadbeefu;
  ack.publish_id = 3;
  ack.already_applied = true;
  ack.message = "duplicate publish";
  MutationAck decoded;
  std::string error;
  ASSERT_TRUE(DecodeMutationAck(EncodeMutationAck(ack), &decoded, &error))
      << error;
  EXPECT_EQ(decoded.idempotency_token, 0xdeadbeefu);
  EXPECT_EQ(decoded.publish_id, 3u);
  EXPECT_TRUE(decoded.already_applied);
  EXPECT_EQ(decoded.message, "duplicate publish");
}

TEST(ServeProtocolTest, StatusNamesAreStable) {
  EXPECT_STREQ(ServeStatusName(ServeStatus::kOk), "OK");
  EXPECT_STREQ(ServeStatusName(ServeStatus::kRejectedOverload),
               "REJECTED_OVERLOAD");
  EXPECT_STREQ(ServeStatusName(ServeStatus::kBudgetExceeded),
               "BUDGET_EXCEEDED");
  EXPECT_STREQ(ServeStatusName(ServeStatus::kDeadlineExceeded),
               "DEADLINE_EXCEEDED");
  EXPECT_STREQ(ServeStatusName(ServeStatus::kRejectedDraining),
               "REJECTED_DRAINING");
  EXPECT_STREQ(MutationStatusName(MutationStatus::kOk), "OK");
  EXPECT_STREQ(MutationStatusName(MutationStatus::kLimitExceeded),
               "LIMIT_EXCEEDED");
  EXPECT_STREQ(MutationStatusName(MutationStatus::kConflict), "CONFLICT");
}

TEST(ServeProtocolTest, SnapshotStampSurvivesResponseRoundTrip) {
  std::vector<ServeResponse> responses(2);
  responses[0].status = ServeStatus::kOk;
  responses[0].snapshot_id = 0xdeadbeefcafef00dull;
  responses[0].snapshot_seq = 41;
  responses[1].status = ServeStatus::kRejectedOverload;
  responses[1].snapshot_id = 7;
  responses[1].snapshot_seq = 42;
  std::vector<ServeResponse> decoded;
  std::string error;
  ASSERT_TRUE(
      DecodeResponseBatch(EncodeResponseBatch(responses), &decoded, &error))
      << error;
  ASSERT_EQ(decoded.size(), 2u);
  EXPECT_EQ(decoded[0].snapshot_id, 0xdeadbeefcafef00dull);
  EXPECT_EQ(decoded[0].snapshot_seq, 41u);
  EXPECT_EQ(decoded[1].snapshot_id, 7u);
  EXPECT_EQ(decoded[1].snapshot_seq, 42u);
}

TEST(ServeProtocolTest, PeekHeaderReadsAnyPayloadKind) {
  FrameHeader header;
  ASSERT_TRUE(PeekHeader(EncodeHello(), &header));
  EXPECT_EQ(header.magic, kProtocolMagic);
  EXPECT_EQ(header.version, kProtocolVersion);
  EXPECT_EQ(header.type, static_cast<uint8_t>(MessageType::kHello));
  ASSERT_TRUE(PeekHeader(EncodeQueryBatch({}), &header));
  EXPECT_EQ(header.type, static_cast<uint8_t>(MessageType::kQueryBatch));
  // Shorter than a header: false, never a read past the end.
  EXPECT_FALSE(PeekHeader("TPRR", &header));
  EXPECT_FALSE(PeekHeader("", &header));
}

TEST(ServeProtocolTest, HandshakeFramesRoundTrip) {
  std::string error;
  ASSERT_TRUE(DecodeHello(EncodeHello(), &error)) << error;

  ServerHello hello;
  hello.max_frame_payload_bytes = kMaxFramePayloadBytes;
  hello.max_inflight_queries = 64;
  hello.max_staged_mutations = 4096;
  hello.snapshot_id = 0x1234567890abcdefull;
  hello.snapshot_seq = 9;
  hello.live_rows = 4999;
  hello.physical_rows = 5003;
  hello.dim = 4;
  ServerHello decoded;
  ASSERT_TRUE(DecodeServerHello(EncodeServerHello(hello), &decoded, &error))
      << error;
  EXPECT_EQ(decoded.max_frame_payload_bytes, hello.max_frame_payload_bytes);
  EXPECT_EQ(decoded.max_inflight_queries, hello.max_inflight_queries);
  EXPECT_EQ(decoded.max_staged_mutations, hello.max_staged_mutations);
  EXPECT_EQ(decoded.snapshot_id, hello.snapshot_id);
  EXPECT_EQ(decoded.snapshot_seq, hello.snapshot_seq);
  EXPECT_EQ(decoded.live_rows, hello.live_rows);
  EXPECT_EQ(decoded.physical_rows, hello.physical_rows);
  EXPECT_EQ(decoded.dim, hello.dim);
}

TEST(ServeProtocolTest, MutationRequestsRoundTrip) {
  std::string error;
  const std::vector<Vec> rows{Vec{0.5, 0.25, 0.125}, Vec{1.0, 0.0, -2.5}};
  std::vector<Vec> decoded_rows;
  ASSERT_TRUE(
      DecodeStageInsert(EncodeStageInsert(rows), &decoded_rows, &error))
      << error;
  ASSERT_EQ(decoded_rows.size(), 2u);
  for (size_t i = 0; i < rows.size(); ++i) {
    ExpectSameVec(rows[i], decoded_rows[i]);
  }

  const std::vector<uint64_t> ids{0, 17, 0xffffffffffull};
  std::vector<uint64_t> decoded_ids;
  ASSERT_TRUE(
      DecodeStageDelete(EncodeStageDelete(ids), &decoded_ids, &error))
      << error;
  EXPECT_EQ(decoded_ids, ids);

  ASSERT_TRUE(DecodePublish(EncodePublish(), &error)) << error;
  ASSERT_TRUE(DecodeCatalogInfo(EncodeCatalogInfo(), &error)) << error;
}

TEST(ServeProtocolTest, MutationAckRoundTripAndMessageCap) {
  MutationAck ack;
  ack.status = MutationStatus::kConflict;
  ack.snapshot_id = 0xfeedfacefeedfaceull;
  ack.snapshot_seq = 12;
  ack.live_rows = 100;
  ack.physical_rows = 105;
  ack.staged_inserts = 3;
  ack.staged_deletes = 2;
  ack.message = "row id 7 is no longer live";
  MutationAck decoded;
  std::string error;
  ASSERT_TRUE(DecodeMutationAck(EncodeMutationAck(ack), &decoded, &error))
      << error;
  EXPECT_EQ(decoded.status, ack.status);
  EXPECT_EQ(decoded.snapshot_id, ack.snapshot_id);
  EXPECT_EQ(decoded.snapshot_seq, ack.snapshot_seq);
  EXPECT_EQ(decoded.live_rows, ack.live_rows);
  EXPECT_EQ(decoded.physical_rows, ack.physical_rows);
  EXPECT_EQ(decoded.staged_inserts, ack.staged_inserts);
  EXPECT_EQ(decoded.staged_deletes, ack.staged_deletes);
  EXPECT_EQ(decoded.message, ack.message);

  // An over-long diagnostic is truncated on encode, not rejected.
  ack.message.assign(10000, 'x');
  ASSERT_TRUE(DecodeMutationAck(EncodeMutationAck(ack), &decoded, &error))
      << error;
  EXPECT_EQ(decoded.message.size(), 256u);
}

TEST(ServeProtocolTest, RejectsUnknownMutationStatus) {
  MutationAck ack;
  ack.status = MutationStatus::kOk;
  std::string payload = EncodeMutationAck(ack);
  payload[6] = 99;  // the status byte right after the 6-byte header
  MutationAck decoded;
  std::string error;
  EXPECT_FALSE(DecodeMutationAck(payload, &decoded, &error));
  EXPECT_NE(error.find("mutation status"), std::string::npos);
}

TEST(ServeProtocolTest, NewMessageKindsRejectEveryTruncation) {
  // Every proper prefix of every v3 payload kind must decode to an
  // error, never crash or succeed -- same matrix the query batch gets.
  const std::vector<Vec> rows{Vec{0.5, 0.25}, Vec{0.75, 0.125}};
  MutationAck ack;
  ack.status = MutationStatus::kInvalidArgument;
  ack.message = "why";
  ServerHello hello;
  hello.dim = 3;
  const std::vector<std::pair<const char*, std::string>> payloads{
      {"hello", EncodeHello()},
      {"server_hello", EncodeServerHello(hello)},
      {"stage_insert", EncodeStageInsert(rows)},
      {"stage_delete", EncodeStageDelete({1, 2, 3})},
      {"publish", EncodePublish()},
      {"catalog_info", EncodeCatalogInfo()},
      {"mutation_ack", EncodeMutationAck(ack)},
  };
  for (const auto& [kind, payload] : payloads) {
    SCOPED_TRACE(kind);
    for (size_t cut = 0; cut < payload.size(); ++cut) {
      SCOPED_TRACE(cut);
      const std::string prefix = payload.substr(0, cut);
      std::string error;
      std::vector<Vec> out_rows;
      std::vector<uint64_t> out_ids;
      MutationAck out_ack;
      ServerHello out_hello;
      EXPECT_FALSE(DecodeHello(prefix, &error));
      EXPECT_FALSE(DecodeServerHello(prefix, &out_hello, &error));
      EXPECT_FALSE(DecodeStageInsert(prefix, &out_rows, &error));
      EXPECT_FALSE(DecodeStageDelete(prefix, &out_ids, &error));
      EXPECT_FALSE(DecodePublish(prefix, &error));
      EXPECT_FALSE(DecodeCatalogInfo(prefix, &error));
      EXPECT_FALSE(DecodeMutationAck(prefix, &out_ack, &error));
    }
  }
}

TEST(ServeProtocolTest, NewMessageKindsRejectTrailingGarbageAndCrossKind) {
  std::string error;
  // Trailing bytes after a complete body.
  EXPECT_FALSE(DecodeHello(EncodeHello() + "x", &error));
  EXPECT_FALSE(DecodePublish(EncodePublish() + "x", &error));
  EXPECT_FALSE(DecodeCatalogInfo(EncodeCatalogInfo() + "x", &error));
  std::vector<uint64_t> ids;
  EXPECT_FALSE(DecodeStageDelete(EncodeStageDelete({1}) + "x", &ids, &error));
  std::vector<Vec> rows;
  EXPECT_FALSE(
      DecodeStageInsert(EncodeStageInsert({Vec{0.5}}) + "x", &rows, &error));
  MutationAck ack;
  EXPECT_FALSE(
      DecodeMutationAck(EncodeMutationAck(MutationAck{}) + "x", &ack,
                        &error));
  // One kind's payload fed to another kind's decoder.
  EXPECT_FALSE(DecodePublish(EncodeHello(), &error));
  EXPECT_NE(error.find("message type"), std::string::npos);
  EXPECT_FALSE(DecodeStageInsert(EncodeStageDelete({1}), &rows, &error));
}

TEST(ServeProtocolTest, StageRequestsRejectAbsurdCounts) {
  // Count fields far beyond what the remaining bytes could hold must be
  // rejected before any allocation happens.
  std::string insert = EncodeStageInsert({});
  for (int i = 1; i <= 4; ++i) {
    insert[insert.size() - i] = static_cast<char>(0xff);
  }
  std::vector<Vec> rows;
  std::string error;
  EXPECT_FALSE(DecodeStageInsert(insert, &rows, &error));

  std::string del = EncodeStageDelete({});
  for (int i = 1; i <= 4; ++i) {
    del[del.size() - i] = static_cast<char>(0xff);
  }
  std::vector<uint64_t> ids;
  EXPECT_FALSE(DecodeStageDelete(del, &ids, &error));
}

TEST(ServeProtocolTest, VersionMismatchFrameDecodesAcrossVersions) {
  // The rejection frame must decode no matter which version byte it
  // carries -- that is the whole point of freezing its layout.
  for (int version = 0; version < 256; ++version) {
    const std::string payload =
        EncodeVersionMismatch(static_cast<uint8_t>(version), 3);
    uint8_t server_version = 0, min_version = 0;
    ASSERT_TRUE(
        DecodeVersionMismatch(payload, &server_version, &min_version))
        << "version byte " << version;
    EXPECT_EQ(server_version, static_cast<uint8_t>(version));
    EXPECT_EQ(min_version, 3u);
  }
  // Bad magic, wrong type byte, truncation, trailing bytes: all rejected.
  uint8_t sv, mv;
  std::string bad_magic = EncodeVersionMismatch(3, 3);
  bad_magic[0] = 'X';
  EXPECT_FALSE(DecodeVersionMismatch(bad_magic, &sv, &mv));
  std::string bad_type = EncodeVersionMismatch(3, 3);
  bad_type[5] = 1;  // kQueryBatch, not the frozen 255
  EXPECT_FALSE(DecodeVersionMismatch(bad_type, &sv, &mv));
  const std::string ok = EncodeVersionMismatch(3, 3);
  for (size_t cut = 0; cut < ok.size(); ++cut) {
    EXPECT_FALSE(DecodeVersionMismatch(ok.substr(0, cut), &sv, &mv));
  }
  EXPECT_FALSE(DecodeVersionMismatch(ok + "x", &sv, &mv));
  // A regular v3 frame is NOT a version-mismatch frame.
  EXPECT_FALSE(DecodeVersionMismatch(EncodeHello(), &sv, &mv));
}

}  // namespace
}  // namespace serve
}  // namespace toprr
