#include "geom/convex_hull.h"

#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace toprr {
namespace {

std::vector<Vec> UnitSquareCorners() {
  return {Vec{0.0, 0.0}, Vec{1.0, 0.0}, Vec{0.0, 1.0}, Vec{1.0, 1.0}};
}

TEST(ConvexHullTest, Dimension1) {
  std::vector<Vec> points = {Vec{0.3}, Vec{0.9}, Vec{0.1}, Vec{0.5}};
  auto hull = ComputeConvexHull(points);
  ASSERT_TRUE(hull.has_value());
  EXPECT_EQ(hull->vertex_indices, (std::vector<int>{1, 2}));
}

TEST(ConvexHullTest, SquareWithInteriorPoint) {
  std::vector<Vec> points = UnitSquareCorners();
  points.push_back(Vec{0.5, 0.5});  // interior
  auto hull = ComputeConvexHull(points);
  ASSERT_TRUE(hull.has_value());
  EXPECT_EQ(hull->vertex_indices.size(), 4u);
  EXPECT_FALSE(std::count(hull->vertex_indices.begin(),
                          hull->vertex_indices.end(), 4));
}

TEST(ConvexHullTest, DegenerateCollinear2D) {
  std::vector<Vec> points = {Vec{0.0, 0.0}, Vec{0.5, 0.5}, Vec{1.0, 1.0}};
  EXPECT_FALSE(ComputeConvexHull(points).has_value());
}

TEST(ConvexHullTest, TooFewPoints) {
  EXPECT_FALSE(ComputeConvexHull({Vec{0.0, 0.0}, Vec{1.0, 1.0}}).has_value());
}

TEST(ConvexHullTest, FacetsAreSupporting) {
  Rng rng(3);
  std::vector<Vec> points;
  for (int i = 0; i < 60; ++i) {
    points.push_back(Vec{rng.Uniform(), rng.Uniform(), rng.Uniform()});
  }
  auto hull = ComputeConvexHull(points);
  ASSERT_TRUE(hull.has_value());
  // Every input point lies on or below every facet plane.
  for (const HullFacet& f : hull->facets) {
    for (const Vec& p : points) {
      EXPECT_LE(Dot(f.normal, p), f.offset + 1e-7);
    }
    // Facet vertices lie on the plane.
    for (int vid : f.vertices) {
      EXPECT_NEAR(Dot(f.normal, points[vid]), f.offset, 1e-8);
    }
  }
}

TEST(ConvexHullTest, CubeVolume3D) {
  std::vector<Vec> points;
  for (int x = 0; x <= 1; ++x) {
    for (int y = 0; y <= 1; ++y) {
      for (int z = 0; z <= 1; ++z) {
        points.push_back(
            Vec{static_cast<double>(x), static_cast<double>(y),
                static_cast<double>(z)});
      }
    }
  }
  EXPECT_NEAR(ConvexHullVolume(points), 1.0, 1e-9);
}

TEST(ConvexHullTest, SimplexVolume4D) {
  // Unit 4-simplex (origin + 4 axis points) has volume 1/4! = 1/24.
  std::vector<Vec> points = {Vec(4, 0.0)};
  for (int j = 0; j < 4; ++j) {
    Vec v(4, 0.0);
    v[j] = 1.0;
    points.push_back(v);
  }
  EXPECT_NEAR(ConvexHullVolume(points), 1.0 / 24.0, 1e-9);
}

TEST(ConvexHullTest, RandomPoints2DMatchesAndrewMonotone) {
  // Cross-check against a classic 2-D monotone-chain implementation.
  Rng rng(11);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<Vec> points;
    for (int i = 0; i < 200; ++i) {
      points.push_back(Vec{rng.Uniform(), rng.Uniform()});
    }
    auto hull = ComputeConvexHull(points);
    ASSERT_TRUE(hull.has_value());

    // Andrew's monotone chain (strict hull: collinear points dropped).
    std::vector<int> order(points.size());
    for (size_t i = 0; i < points.size(); ++i) order[i] = static_cast<int>(i);
    std::sort(order.begin(), order.end(), [&](int a, int b) {
      if (points[a][0] != points[b][0]) return points[a][0] < points[b][0];
      return points[a][1] < points[b][1];
    });
    const auto cross = [&](int o, int a, int b) {
      return (points[a][0] - points[o][0]) * (points[b][1] - points[o][1]) -
             (points[a][1] - points[o][1]) * (points[b][0] - points[o][0]);
    };
    const auto build_half = [&](const std::vector<int>& ids) {
      std::vector<int> half;
      for (int id : ids) {
        while (half.size() >= 2 &&
               cross(half[half.size() - 2], half.back(), id) <= 0) {
          half.pop_back();
        }
        half.push_back(id);
      }
      return half;
    };
    std::vector<int> lower = build_half(order);
    std::vector<int> reversed(order.rbegin(), order.rend());
    std::vector<int> upper = build_half(reversed);
    std::vector<int> chain(lower.begin(), lower.end() - 1);
    chain.insert(chain.end(), upper.begin(), upper.end() - 1);
    std::sort(chain.begin(), chain.end());
    std::vector<int> ours = hull->vertex_indices;
    std::sort(ours.begin(), ours.end());
    EXPECT_EQ(ours, chain) << "trial " << trial;
  }
}

TEST(ConvexHullTest, HighDimensionalCrossPolytope) {
  // The 5-D cross polytope: 10 axis vertices, all extreme.
  const size_t d = 5;
  std::vector<Vec> points;
  for (size_t j = 0; j < d; ++j) {
    Vec plus(d, 0.0);
    plus[j] = 1.0;
    points.push_back(plus);
    Vec minus(d, 0.0);
    minus[j] = -1.0;
    points.push_back(minus);
  }
  points.push_back(Vec(d, 0.0));            // center (interior)
  points.push_back(Vec(d, 1.0 / (2 * d)));  // interior
  auto hull = ComputeConvexHull(points);
  ASSERT_TRUE(hull.has_value());
  EXPECT_EQ(hull->vertex_indices.size(), 2 * d);
  // Volume of the d-dim cross polytope is 2^d / d!.
  double expected = std::pow(2.0, static_cast<double>(d));
  for (size_t i = 2; i <= d; ++i) expected /= static_cast<double>(i);
  EXPECT_NEAR(ConvexHullVolume(points), expected, 1e-6);
}

TEST(ConvexHullTest, VolumeOfRandomBoxMatches) {
  Rng rng(5);
  // Random axis-aligned box corners plus interior points.
  const Vec lo{0.2, 0.1, 0.3};
  const Vec hi{0.8, 0.9, 0.7};
  std::vector<Vec> points;
  for (int mask = 0; mask < 8; ++mask) {
    Vec v(3);
    for (int j = 0; j < 3; ++j) {
      v[j] = ((mask >> j) & 1) ? hi[j] : lo[j];
    }
    points.push_back(v);
  }
  for (int i = 0; i < 40; ++i) {
    points.push_back(Vec{rng.Uniform(0.2, 0.8), rng.Uniform(0.1, 0.9),
                         rng.Uniform(0.3, 0.7)});
  }
  const double expected = 0.6 * 0.8 * 0.4;
  EXPECT_NEAR(ConvexHullVolume(points), expected, 1e-6);
}

TEST(ConvexHullVerticesTest, DegenerateReturnsEmpty) {
  EXPECT_TRUE(ConvexHullVertices({Vec{1.0, 1.0}}).empty());
}

}  // namespace
}  // namespace toprr
