// Cross-validation property tests for the geometry substrate: the convex
// hull against LP-based extremality, and polytope splitting against
// halfspace-intersection vertex enumeration.
#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "geom/convex_hull.h"
#include "geom/halfspace_intersection.h"
#include "geom/lp.h"
#include "pref/pref_space.h"
#include "pref/region.h"

namespace toprr {
namespace {

// A point p is extreme in a point set iff it cannot be written as a convex
// combination of the others -- equivalently there is a direction c with
// c.p > max over others of c.q. We verify via LP on the dual: p is NOT
// extreme iff the system {sum l_i q_i = p, sum l_i = 1, l >= 0} is
// feasible. Encode the l variables as the LP unknowns with equality pairs.
bool IsConvexCombination(const std::vector<Vec>& points, size_t target,
                         double tol = 1e-7) {
  const size_t d = points[0].dim();
  const size_t n = points.size();
  std::vector<Halfspace> constraints;
  const size_t vars = n;  // lambda_i, i != target gets weight; target fixed 0
  // Equalities sum l_i q_i = p and sum l_i = 1 as pairs of inequalities.
  for (size_t row = 0; row <= d; ++row) {
    Vec coeff(vars);
    double rhs;
    if (row < d) {
      for (size_t i = 0; i < n; ++i) {
        coeff[i] = (i == target) ? 0.0 : points[i][row];
      }
      rhs = points[target][row];
    } else {
      for (size_t i = 0; i < n; ++i) coeff[i] = (i == target) ? 0.0 : 1.0;
      rhs = 1.0;
    }
    constraints.emplace_back(coeff, rhs + tol);
    constraints.emplace_back(coeff * -1.0, -(rhs - tol));
  }
  for (size_t i = 0; i < n; ++i) {
    Vec coeff(vars);
    coeff[i] = -1.0;
    constraints.emplace_back(std::move(coeff), 0.0);  // l_i >= 0
  }
  return IsFeasible(constraints, vars);
}

class HullExtremalityProperty : public ::testing::TestWithParam<int> {};

TEST_P(HullExtremalityProperty, HullVerticesAreExactlyTheExtremePoints) {
  const int seed = GetParam();
  Rng rng(seed * 97);
  const size_t d = 2 + static_cast<size_t>(seed % 3);
  std::vector<Vec> points;
  const size_t n = 25;
  for (size_t i = 0; i < n; ++i) {
    Vec p(d);
    for (size_t j = 0; j < d; ++j) p[j] = rng.Uniform();
    points.push_back(std::move(p));
  }
  auto hull = ComputeConvexHull(points);
  ASSERT_TRUE(hull.has_value());
  std::vector<bool> on_hull(n, false);
  for (int v : hull->vertex_indices) on_hull[v] = true;
  for (size_t i = 0; i < n; ++i) {
    EXPECT_NE(on_hull[i], IsConvexCombination(points, i))
        << "point " << i << " misclassified (seed " << seed << ")";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, HullExtremalityProperty,
                         ::testing::Range(1, 10));

class SplitVsIntersectionProperty : public ::testing::TestWithParam<int> {};

TEST_P(SplitVsIntersectionProperty, SplitChildrenMatchHalfspaceVertices) {
  // Splitting a box region by a random plane must yield children whose
  // vertex sets equal the vertices of {box halfspaces + plane halfspace}
  // computed by the independent duality-based enumerator.
  const int seed = GetParam();
  Rng rng(seed * 101);
  const size_t m = 2 + static_cast<size_t>(seed % 3);
  const PrefBox box = RandomPrefBox(m, 0.2, rng);
  const PrefRegion region = PrefRegion::FromBox(box);
  Vec n(m);
  for (size_t j = 0; j < m; ++j) n[j] = rng.Uniform(-1.0, 1.0);
  if (n.MaxAbs() < 0.2) n[0] = 1.0;
  const Vec point_inside = region.Centroid();
  const Hyperplane plane(n, Dot(n, point_inside));
  const auto split = region.Split(plane);
  ASSERT_TRUE(split.below.has_value());
  ASSERT_TRUE(split.above.has_value());

  const auto reference_vertices = [&](bool below) {
    std::vector<Halfspace> hs = box.Halfspaces();
    if (below) {
      hs.emplace_back(plane.normal, plane.offset);
    } else {
      hs.emplace_back(plane.normal * -1.0, -plane.offset);
    }
    auto r = IntersectHalfspaces(hs, box.dim());
    return r.has_value() ? r->vertices : std::vector<Vec>{};
  };
  const auto match = [&](const PrefRegion& child,
                         const std::vector<Vec>& reference) {
    if (reference.empty()) return;  // enumeration degenerate; skip
    // Every reference vertex appears among the child's vertices.
    for (const Vec& rv : reference) {
      bool found = false;
      for (const Vec& cv : child.vertices()) {
        if (ApproxEqual(cv, rv, 1e-6)) {
          found = true;
          break;
        }
      }
      EXPECT_TRUE(found) << "missing vertex " << rv.ToString() << " (seed "
                         << seed << ")";
    }
    // And the child has no extra (out-of-polytope) vertices.
    for (const Vec& cv : child.vertices()) {
      bool found = false;
      for (const Vec& rv : reference) {
        if (ApproxEqual(cv, rv, 1e-6)) {
          found = true;
          break;
        }
      }
      EXPECT_TRUE(found) << "spurious vertex " << cv.ToString() << " (seed "
                         << seed << ")";
    }
  };
  match(*split.below, reference_vertices(true));
  match(*split.above, reference_vertices(false));
}

INSTANTIATE_TEST_SUITE_P(Seeds, SplitVsIntersectionProperty,
                         ::testing::Range(1, 13));

TEST(GeometryPropertyTest, RepeatedSplitsKeepExactVertexSets) {
  // Chain several splits and check the final cell against the accumulated
  // halfspace system.
  Rng rng(424242);
  const size_t m = 3;
  PrefBox box;
  box.lo = Vec(m, 0.1);
  box.hi = Vec(m, 0.3);
  PrefRegion region = PrefRegion::FromBox(box);
  std::vector<Halfspace> accumulated = box.Halfspaces();
  for (int round = 0; round < 4; ++round) {
    Vec n(m);
    for (size_t j = 0; j < m; ++j) n[j] = rng.Uniform(-1.0, 1.0);
    if (n.MaxAbs() < 0.2) continue;
    const Hyperplane plane(n, Dot(n, region.Centroid()));
    auto split = region.Split(plane);
    if (!split.below.has_value() || !split.above.has_value()) continue;
    const bool keep_below = rng.Uniform() < 0.5;
    region = keep_below ? std::move(*split.below) : std::move(*split.above);
    if (keep_below) {
      accumulated.emplace_back(plane.normal, plane.offset);
    } else {
      accumulated.emplace_back(plane.normal * -1.0, -plane.offset);
    }
  }
  auto reference = IntersectHalfspaces(accumulated, m);
  ASSERT_TRUE(reference.has_value());
  EXPECT_EQ(region.vertices().size(), reference->vertices.size());
  for (const Vec& rv : reference->vertices) {
    bool found = false;
    for (const Vec& cv : region.vertices()) {
      if (ApproxEqual(cv, rv, 1e-6)) {
        found = true;
        break;
      }
    }
    EXPECT_TRUE(found) << rv.ToString();
  }
}

}  // namespace
}  // namespace toprr
