#include "data/generator.h"

#include <cmath>

#include <gtest/gtest.h>

namespace toprr {
namespace {

// Mean Pearson correlation over all attribute pairs.
double MeanPairwiseCorrelation(const Dataset& ds) {
  const size_t n = ds.size();
  const size_t d = ds.dim();
  std::vector<double> mean(d, 0.0);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < d; ++j) mean[j] += ds.At(i, j);
  }
  for (double& m : mean) m /= static_cast<double>(n);
  std::vector<double> var(d, 0.0);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < d; ++j) {
      const double c = ds.At(i, j) - mean[j];
      var[j] += c * c;
    }
  }
  double acc = 0.0;
  int pairs = 0;
  for (size_t a = 0; a < d; ++a) {
    for (size_t b = a + 1; b < d; ++b) {
      double cov = 0.0;
      for (size_t i = 0; i < n; ++i) {
        cov += (ds.At(i, a) - mean[a]) * (ds.At(i, b) - mean[b]);
      }
      acc += cov / std::sqrt(var[a] * var[b]);
      ++pairs;
    }
  }
  return acc / pairs;
}

TEST(GeneratorTest, ShapesAndRanges) {
  for (Distribution dist : {Distribution::kIndependent,
                            Distribution::kCorrelated,
                            Distribution::kAnticorrelated}) {
    const Dataset ds = GenerateSynthetic(500, 4, dist, 1);
    EXPECT_EQ(ds.size(), 500u);
    EXPECT_EQ(ds.dim(), 4u);
    for (size_t i = 0; i < ds.size(); ++i) {
      for (size_t j = 0; j < ds.dim(); ++j) {
        EXPECT_GE(ds.At(i, j), 0.0);
        EXPECT_LE(ds.At(i, j), 1.0);
      }
    }
  }
}

TEST(GeneratorTest, Deterministic) {
  const Dataset a = GenerateSynthetic(100, 3, Distribution::kIndependent, 7);
  const Dataset b = GenerateSynthetic(100, 3, Distribution::kIndependent, 7);
  for (size_t i = 0; i < a.size(); ++i) {
    for (size_t j = 0; j < a.dim(); ++j) {
      EXPECT_DOUBLE_EQ(a.At(i, j), b.At(i, j));
    }
  }
  const Dataset c = GenerateSynthetic(100, 3, Distribution::kIndependent, 8);
  bool differs = false;
  for (size_t i = 0; i < a.size() && !differs; ++i) {
    for (size_t j = 0; j < a.dim(); ++j) {
      if (a.At(i, j) != c.At(i, j)) {
        differs = true;
        break;
      }
    }
  }
  EXPECT_TRUE(differs);
}

TEST(GeneratorTest, CorrelationStructure) {
  const Dataset ind =
      GenerateSynthetic(4000, 3, Distribution::kIndependent, 2);
  const Dataset cor =
      GenerateSynthetic(4000, 3, Distribution::kCorrelated, 2);
  const Dataset anti =
      GenerateSynthetic(4000, 3, Distribution::kAnticorrelated, 2);
  const double r_ind = MeanPairwiseCorrelation(ind);
  const double r_cor = MeanPairwiseCorrelation(cor);
  const double r_anti = MeanPairwiseCorrelation(anti);
  EXPECT_NEAR(r_ind, 0.0, 0.08);
  EXPECT_GT(r_cor, 0.6);
  EXPECT_LT(r_anti, -0.2);
}

TEST(GeneratorTest, ParseDistribution) {
  Distribution d;
  EXPECT_TRUE(ParseDistribution("IND", &d));
  EXPECT_EQ(d, Distribution::kIndependent);
  EXPECT_TRUE(ParseDistribution("cor", &d));
  EXPECT_EQ(d, Distribution::kCorrelated);
  EXPECT_TRUE(ParseDistribution("Anti", &d));
  EXPECT_EQ(d, Distribution::kAnticorrelated);
  EXPECT_FALSE(ParseDistribution("zipf", &d));
}

TEST(GeneratorTest, DistributionNames) {
  EXPECT_STREQ(DistributionName(Distribution::kIndependent), "IND");
  EXPECT_STREQ(DistributionName(Distribution::kCorrelated), "COR");
  EXPECT_STREQ(DistributionName(Distribution::kAnticorrelated), "ANTI");
}

TEST(GeneratorTest, RealLikeCardinalities) {
  const Dataset hotel = GenerateHotelLike(1, 0.01);
  EXPECT_EQ(hotel.dim(), 4u);
  EXPECT_NEAR(static_cast<double>(hotel.size()), 4188.0, 8.0);
  const Dataset house = GenerateHouseLike(1, 0.01);
  EXPECT_EQ(house.dim(), 6u);
  const Dataset nba = GenerateNbaLike(1, 0.1);
  EXPECT_EQ(nba.dim(), 8u);
  EXPECT_NEAR(static_cast<double>(nba.size()), 2196.0, 4.0);
}

TEST(GeneratorTest, RealLikeCorrelationSigns) {
  const Dataset house = GenerateHouseLike(3, 0.02);
  const Dataset nba = GenerateNbaLike(3, 0.3);
  EXPECT_LT(MeanPairwiseCorrelation(house), -0.02);
  EXPECT_GT(MeanPairwiseCorrelation(nba), 0.15);
}

TEST(GeneratorTest, HotelStarsQuantized) {
  const Dataset hotel = GenerateHotelLike(5, 0.002);
  for (size_t i = 0; i < hotel.size(); ++i) {
    const double quarter = hotel.At(i, 0) * 4.0;
    EXPECT_NEAR(quarter, std::round(quarter), 1e-9);
  }
}

TEST(GeneratorTest, CnetLaptops) {
  const Dataset laptops = GenerateCnetLaptops(9);
  EXPECT_EQ(laptops.size(), 149u);
  EXPECT_EQ(laptops.dim(), 2u);
  EXPECT_LT(MeanPairwiseCorrelation(laptops), -0.3);  // trade-off shape
}

}  // namespace
}  // namespace toprr
