// Fault-injection decorator tests (serve/faults.h): determinism of the
// seeded schedule, short-transfer and delay composition with the framing
// loops, and the hard byte-offset faults (reset / truncating EOF) that
// script "the connection dies exactly here" scenarios. Labeled `serve`
// through the CMake test glob.
#include "serve/faults.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <string>

namespace toprr {
namespace serve {
namespace {

// Loopback ByteStream: writes append to a buffer, reads consume it.
class MemoryStream : public ByteStream {
 public:
  explicit MemoryStream(std::string input = "") : buffer_(std::move(input)) {}

  ssize_t ReadSome(void* out, size_t length) override {
    if (pos_ >= buffer_.size()) return 0;  // EOF
    const size_t n = std::min(length, buffer_.size() - pos_);
    std::memcpy(out, buffer_.data() + pos_, n);
    pos_ += n;
    return static_cast<ssize_t>(n);
  }

  ssize_t WriteSome(const void* data, size_t length) override {
    buffer_.append(static_cast<const char*>(data), length);
    return static_cast<ssize_t>(length);
  }

  const std::string& buffer() const { return buffer_; }

 private:
  std::string buffer_;
  size_t pos_ = 0;
};

// Length-prefixes `payload` the way WriteFrame does.
std::string Framed(const std::string& payload) {
  std::string framed;
  const uint32_t length = static_cast<uint32_t>(payload.size());
  for (int shift = 0; shift < 32; shift += 8) {
    framed.push_back(static_cast<char>((length >> shift) & 0xff));
  }
  return framed + payload;
}

TEST(ServeFaultsTest, NoFaultsIsTransparent) {
  MemoryStream inner;
  FaultyStream faulty(inner, FaultPlan{});
  ASSERT_TRUE(WriteFrame(faulty, "untouched payload"));
  std::string decoded;
  EXPECT_EQ(ReadFrame(faulty, &decoded), FrameReadStatus::kOk);
  EXPECT_EQ(decoded, "untouched payload");
  EXPECT_EQ(faulty.short_transfers(), 0u);
  EXPECT_EQ(faulty.bit_flips(), 0u);
  EXPECT_EQ(faulty.resets(), 0u);
}

TEST(ServeFaultsTest, ShortTransfersStillDeliverFrames) {
  // Aggressive fragmentation on both directions: the framing loops must
  // reassemble everything regardless.
  FaultPlan plan;
  plan.seed = 42;
  plan.short_transfer_probability = 1.0;
  plan.short_transfer_max_bytes = 2;
  MemoryStream inner;
  FaultyStream faulty(inner, plan);
  const std::string payload(512, 'q');
  ASSERT_TRUE(WriteFrame(faulty, payload));
  EXPECT_EQ(inner.buffer(), Framed(payload));
  std::string decoded;
  EXPECT_EQ(ReadFrame(faulty, &decoded), FrameReadStatus::kOk);
  EXPECT_EQ(decoded, payload);
  // (4 + 512) bytes at <= 2 bytes per call, both directions.
  EXPECT_GE(faulty.short_transfers(), 2u * 258u);
}

TEST(ServeFaultsTest, SameSeedSameFaults) {
  const auto run = [](uint64_t seed) {
    FaultPlan plan;
    plan.seed = seed;
    plan.short_transfer_probability = 0.35;
    plan.short_transfer_max_bytes = 3;
    plan.bit_flip_probability = 0.1;
    MemoryStream inner;
    FaultyStream faulty(inner, plan);
    WriteFrame(faulty, std::string(256, 'd'));
    struct Outcome {
      std::string bytes;
      uint64_t shorts, flips;
    };
    return Outcome{inner.buffer(), faulty.short_transfers(),
                   faulty.bit_flips()};
  };
  const auto a = run(7);
  const auto b = run(7);
  const auto c = run(8);
  // Identical seeds replay byte-for-byte, including the corruption.
  EXPECT_EQ(a.bytes, b.bytes);
  EXPECT_EQ(a.shorts, b.shorts);
  EXPECT_EQ(a.flips, b.flips);
  // A different seed gives a different schedule (flip counts or bytes).
  EXPECT_TRUE(a.bytes != c.bytes || a.flips != c.flips);
}

TEST(ServeFaultsTest, EofAtExactOffsetTruncatesMidFrame) {
  // Kill the stream two bytes into the length prefix: the reader must
  // see a mid-frame truncation, not a clean EOF.
  FaultPlan plan;
  plan.eof_after_read_bytes = 2;
  MemoryStream inner(Framed("doomed payload"));
  FaultyStream faulty(inner, plan);
  std::string decoded;
  bool frame_started = false;
  EXPECT_EQ(ReadFrame(faulty, &decoded, kMaxFramePayloadBytes, nullptr,
                      &frame_started),
            FrameReadStatus::kTruncated);
  EXPECT_TRUE(frame_started);
  EXPECT_EQ(faulty.bytes_read(), 2u);
}

TEST(ServeFaultsTest, ResetAtExactOffsetIsIoError) {
  FaultPlan plan;
  plan.reset_after_read_bytes = 6;  // two bytes into the payload
  MemoryStream inner(Framed("doomed payload"));
  FaultyStream faulty(inner, plan);
  std::string decoded;
  errno = 0;
  EXPECT_EQ(ReadFrame(faulty, &decoded), FrameReadStatus::kIoError);
  EXPECT_EQ(errno, ECONNRESET);
  EXPECT_EQ(faulty.bytes_read(), 6u);
  EXPECT_GE(faulty.resets(), 1u);
}

TEST(ServeFaultsTest, WriteResetAtExactOffset) {
  FaultPlan plan;
  plan.reset_after_write_bytes = 4;  // the prefix lands, the payload dies
  MemoryStream inner;
  FaultyStream faulty(inner, plan);
  errno = 0;
  EXPECT_FALSE(WriteFrame(faulty, "doomed payload"));
  EXPECT_EQ(errno, ECONNRESET);
  EXPECT_EQ(faulty.bytes_written(), 4u);
}

TEST(ServeFaultsTest, BitFlipCorruptsWithoutTouchingCallerBuffer) {
  FaultPlan plan;
  plan.seed = 3;
  plan.bit_flip_probability = 1.0;
  MemoryStream inner;
  FaultyStream faulty(inner, plan);
  const std::string payload(64, 'c');
  ASSERT_TRUE(WriteFrame(faulty, payload));
  EXPECT_GE(faulty.bit_flips(), 1u);
  // Same length, different bytes: corruption happened on the wire copy.
  const std::string clean = Framed(payload);
  ASSERT_EQ(inner.buffer().size(), clean.size());
  EXPECT_NE(inner.buffer(), clean);
  // And the caller's payload string was never modified (C++11 strings
  // are never CoW, so the constant above proves it).
  EXPECT_EQ(payload, std::string(64, 'c'));
}

TEST(ServeFaultsTest, DelaysFireAndAreCounted) {
  FaultPlan plan;
  plan.delay_probability = 1.0;
  plan.delay_ms = 1;
  MemoryStream inner(Framed("slow"));
  FaultyStream faulty(inner, plan);
  std::string decoded;
  EXPECT_EQ(ReadFrame(faulty, &decoded), FrameReadStatus::kOk);
  EXPECT_EQ(decoded, "slow");
  EXPECT_GE(faulty.delays(), 1u);
}

}  // namespace
}  // namespace serve
}  // namespace toprr
