#include "pref/region.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace toprr {
namespace {

PrefBox MakeBox(std::initializer_list<double> lo,
                std::initializer_list<double> hi) {
  PrefBox box;
  box.lo = Vec(lo);
  box.hi = Vec(hi);
  return box;
}

TEST(RegionTest, FromBox1D) {
  const PrefRegion region = PrefRegion::FromBox(MakeBox({0.2}, {0.8}));
  EXPECT_EQ(region.dim(), 1u);
  EXPECT_EQ(region.vertices().size(), 2u);
  EXPECT_EQ(region.facets().size(), 2u);
  EXPECT_TRUE(region.Contains(Vec{0.5}));
  EXPECT_FALSE(region.Contains(Vec{0.9}));
}

TEST(RegionTest, FromBox2DStructure) {
  const PrefRegion region =
      PrefRegion::FromBox(MakeBox({0.2, 0.1}, {0.3, 0.2}));
  EXPECT_EQ(region.vertices().size(), 4u);
  EXPECT_EQ(region.facets().size(), 4u);
  for (const RegionFacet& f : region.facets()) {
    EXPECT_EQ(f.vertex_ids.size(), 2u);
    // Incident vertices lie on the facet boundary.
    for (int vid : f.vertex_ids) {
      EXPECT_NEAR(f.halfspace.Violation(region.vertices()[vid]), 0.0, 1e-12);
    }
  }
  EXPECT_TRUE(ApproxEqual(region.Centroid(), Vec{0.25, 0.15}, 1e-12));
}

TEST(RegionTest, FromBox3DStructure) {
  const PrefRegion region =
      PrefRegion::FromBox(MakeBox({0.2, 0.0, 0.0}, {0.3, 0.3, 0.1}));
  EXPECT_EQ(region.vertices().size(), 8u);
  EXPECT_EQ(region.facets().size(), 6u);
  for (const RegionFacet& f : region.facets()) {
    EXPECT_EQ(f.vertex_ids.size(), 4u);
  }
}

TEST(RegionSplitTest, Interval) {
  const PrefRegion region = PrefRegion::FromBox(MakeBox({0.2}, {0.8}));
  const Hyperplane plane(Vec{1.0}, 0.5);  // x = 0.5
  const auto split = region.Split(plane);
  ASSERT_TRUE(split.below.has_value());
  ASSERT_TRUE(split.above.has_value());
  EXPECT_TRUE(split.below->Contains(Vec{0.3}));
  EXPECT_FALSE(split.below->Contains(Vec{0.7}));
  EXPECT_TRUE(split.above->Contains(Vec{0.7}));
  // New vertex at 0.5 on both children.
  const auto has_half = [](const PrefRegion& r) {
    return std::any_of(r.vertices().begin(), r.vertices().end(),
                       [](const Vec& v) {
                         return std::abs(v[0] - 0.5) < 1e-12;
                       });
  };
  EXPECT_TRUE(has_half(*split.below));
  EXPECT_TRUE(has_half(*split.above));
}

TEST(RegionSplitTest, NonCuttingPlaneReturnsOneSide) {
  const PrefRegion region = PrefRegion::FromBox(MakeBox({0.2}, {0.8}));
  const auto split = region.Split(Hyperplane(Vec{1.0}, 0.9));
  EXPECT_TRUE(split.below.has_value());
  EXPECT_FALSE(split.above.has_value());
  EXPECT_EQ(split.below->vertices().size(), 2u);
}

TEST(RegionSplitTest, SquareDiagonal) {
  // Split the unit square by x = y; each child is a triangle.
  const PrefRegion region =
      PrefRegion::FromBox(MakeBox({0.0, 0.0}, {0.4, 0.4}));
  const Hyperplane diag(Vec{1.0, -1.0}, 0.0);
  const auto split = region.Split(diag);
  ASSERT_TRUE(split.below.has_value());
  ASSERT_TRUE(split.above.has_value());
  // Each child is a triangle: the two on-plane corners plus one off-plane
  // corner (the diagonal passes through box corners, so no new vertices).
  EXPECT_EQ(split.below->vertices().size(), 3u);
  EXPECT_TRUE(split.below->Contains(Vec{0.1, 0.3}));
  EXPECT_FALSE(split.below->Contains(Vec{0.3, 0.1}));
  EXPECT_TRUE(split.above->Contains(Vec{0.3, 0.1}));
}

TEST(RegionSplitTest, SquareAxisCut) {
  const PrefRegion region =
      PrefRegion::FromBox(MakeBox({0.0, 0.0}, {1.0, 1.0}));
  const auto split = region.Split(Hyperplane(Vec{1.0, 0.0}, 0.25));
  ASSERT_TRUE(split.below.has_value());
  ASSERT_TRUE(split.above.has_value());
  EXPECT_EQ(split.below->vertices().size(), 4u);
  EXPECT_EQ(split.above->vertices().size(), 4u);
  EXPECT_EQ(split.below->facets().size(), 4u);
  EXPECT_EQ(split.above->facets().size(), 4u);
  // Facet/vertex incidence still consistent.
  for (const PrefRegion* child : {&*split.below, &*split.above}) {
    for (const RegionFacet& f : child->facets()) {
      for (int vid : f.vertex_ids) {
        EXPECT_NEAR(f.halfspace.Violation(child->vertices()[vid]), 0.0,
                    1e-9);
      }
    }
  }
}

TEST(RegionSplitTest, CubeSplitGeneralPlane) {
  const PrefRegion region =
      PrefRegion::FromBox(MakeBox({0.0, 0.0, 0.0}, {0.2, 0.2, 0.2}));
  const Hyperplane plane(Vec{1.0, 1.0, 1.0}, 0.3);
  const auto split = region.Split(plane);
  ASSERT_TRUE(split.below.has_value());
  ASSERT_TRUE(split.above.has_value());
  // Sample containment agreement with the half-space definition.
  Rng rng(8);
  for (int trial = 0; trial < 500; ++trial) {
    const Vec x{rng.Uniform(0.0, 0.2), rng.Uniform(0.0, 0.2),
                rng.Uniform(0.0, 0.2)};
    const double side = plane.Eval(x);
    if (std::abs(side) < 1e-6) continue;
    if (side < 0.0) {
      EXPECT_TRUE(split.below->Contains(x, 1e-9));
      EXPECT_FALSE(split.above->Contains(x, 1e-9));
    } else {
      EXPECT_TRUE(split.above->Contains(x, 1e-9));
      EXPECT_FALSE(split.below->Contains(x, 1e-9));
    }
  }
}

TEST(RegionSplitTest, RepeatedSplitsPreserveVolumePartition) {
  // After several random splits, any sample point of the original box
  // belongs to at least one leaf region (and leaves do not overlap except
  // at boundaries).
  Rng rng(9);
  std::vector<PrefRegion> leaves = {
      PrefRegion::FromBox(MakeBox({0.1, 0.1}, {0.5, 0.5}))};
  for (int round = 0; round < 5; ++round) {
    std::vector<PrefRegion> next;
    for (const PrefRegion& leaf : leaves) {
      Vec n{rng.Uniform(-1.0, 1.0), rng.Uniform(-1.0, 1.0)};
      if (n.Norm() < 0.2) {
        next.push_back(leaf);
        continue;
      }
      const Vec c = leaf.Centroid();
      const Hyperplane plane(n, Dot(n, c));  // passes through the centroid
      const auto split = leaf.Split(plane);
      if (split.below.has_value()) next.push_back(*split.below);
      if (split.above.has_value()) next.push_back(*split.above);
    }
    leaves = std::move(next);
  }
  for (int trial = 0; trial < 300; ++trial) {
    const Vec x{rng.Uniform(0.1, 0.5), rng.Uniform(0.1, 0.5)};
    int containing = 0;
    for (const PrefRegion& leaf : leaves) {
      if (leaf.Contains(x, 1e-9)) ++containing;
    }
    EXPECT_GE(containing, 1) << "point lost by splitting: " << x.ToString();
  }
}

TEST(RegionSplitTest, OnPlaneVerticesJoinBothChildren) {
  // Plane through two opposite corners of the square.
  const PrefRegion region =
      PrefRegion::FromBox(MakeBox({0.0, 0.0}, {1.0, 1.0}));
  const Hyperplane diag(Vec{1.0, -1.0}, 0.0);  // through (0,0) and (1,1)
  const auto split = region.Split(diag);
  ASSERT_TRUE(split.below.has_value());
  ASSERT_TRUE(split.above.has_value());
  for (const PrefRegion* child : {&*split.below, &*split.above}) {
    bool has_origin = false;
    bool has_ones = false;
    for (const Vec& v : child->vertices()) {
      if (ApproxEqual(v, Vec{0.0, 0.0}, 1e-12)) has_origin = true;
      if (ApproxEqual(v, Vec{1.0, 1.0}, 1e-12)) has_ones = true;
    }
    EXPECT_TRUE(has_origin);
    EXPECT_TRUE(has_ones);
    EXPECT_EQ(child->vertices().size(), 3u);  // a triangle
  }
}

}  // namespace
}  // namespace toprr
