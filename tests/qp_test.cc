#include "geom/qp.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace toprr {
namespace {

TEST(QpTest, InteriorTargetIsFixedPoint) {
  const auto hs = BoxHalfspaces(Vec{0.0, 0.0}, Vec{1.0, 1.0});
  const Vec target{0.4, 0.6};
  const QpResult r = ProjectOntoPolytope(target, hs);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(ApproxEqual(r.x, target, 1e-8));
  EXPECT_NEAR(r.objective, 0.0, 1e-12);
}

TEST(QpTest, ProjectOntoFace) {
  const auto hs = BoxHalfspaces(Vec{0.0, 0.0}, Vec{1.0, 1.0});
  const QpResult r = ProjectOntoPolytope(Vec{2.0, 0.5}, hs);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r.x[0], 1.0, 1e-8);
  EXPECT_NEAR(r.x[1], 0.5, 1e-8);
}

TEST(QpTest, ProjectOntoCorner) {
  const auto hs = BoxHalfspaces(Vec{0.0, 0.0}, Vec{1.0, 1.0});
  const QpResult r = ProjectOntoPolytope(Vec{3.0, -2.0}, hs);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r.x[0], 1.0, 1e-8);
  EXPECT_NEAR(r.x[1], 0.0, 1e-8);
}

TEST(QpTest, ProjectOntoSlantedPlane) {
  // Halfplane x + y <= 1; projecting (1,1) lands at (0.5, 0.5).
  std::vector<Halfspace> hs = {
      Halfspace(Vec{1.0, 1.0}, 1.0),
      Halfspace(Vec{-1.0, 0.0}, 1.0),  // x >= -1 keeps Chebyshev bounded
      Halfspace(Vec{0.0, -1.0}, 1.0),
  };
  const QpResult r = ProjectOntoPolytope(Vec{1.0, 1.0}, hs);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r.x[0], 0.5, 1e-7);
  EXPECT_NEAR(r.x[1], 0.5, 1e-7);
}

TEST(QpTest, Infeasible) {
  std::vector<Halfspace> hs = {
      Halfspace(Vec{1.0}, 0.0),
      Halfspace(Vec{-1.0}, -1.0),
  };
  const QpResult r = ProjectOntoPolytope(Vec{0.5}, hs);
  EXPECT_EQ(r.status, QpStatus::kInfeasible);
}

TEST(QpTest, MinimumQuadraticCost) {
  // Feasible region x, y >= 0.3; nearest-to-origin is (0.3, 0.3).
  std::vector<Halfspace> hs = {
      Halfspace(Vec{-1.0, 0.0}, -0.3),
      Halfspace(Vec{0.0, -1.0}, -0.3),
      Halfspace(Vec{1.0, 0.0}, 1.0),
      Halfspace(Vec{0.0, 1.0}, 1.0),
  };
  const QpResult r = MinimumQuadraticCostPoint(hs, 2);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r.x[0], 0.3, 1e-7);
  EXPECT_NEAR(r.x[1], 0.3, 1e-7);
}

TEST(QpTest, RandomProjectionsSatisfyOptimalityConditions) {
  // Projection optimality: for the result x*, the vector (target - x*)
  // must be a non-negative combination of active constraint normals;
  // verify the weaker but sufficient variational inequality
  //   (target - x*) . (y - x*) <= tol for all feasible y (sampled).
  Rng rng(23);
  for (int trial = 0; trial < 15; ++trial) {
    const size_t d = 2 + static_cast<size_t>(trial % 3);
    std::vector<Halfspace> hs = BoxHalfspaces(Vec(d, 0.0), Vec(d, 1.0));
    for (int extra = 0; extra < 3; ++extra) {
      Vec n(d);
      for (size_t j = 0; j < d; ++j) n[j] = rng.Uniform(-1.0, 1.0);
      if (n.Norm() < 0.3) continue;
      hs.emplace_back(n, Dot(n, Vec(d, 0.5)) + rng.Uniform(0.05, 0.5));
    }
    Vec target(d);
    for (size_t j = 0; j < d; ++j) target[j] = rng.Uniform(-1.0, 2.0);
    const QpResult r = ProjectOntoPolytope(target, hs);
    ASSERT_TRUE(r.ok()) << "trial " << trial;
    const Vec g = target - r.x;
    for (int sample = 0; sample < 200; ++sample) {
      Vec y(d);
      for (size_t j = 0; j < d; ++j) y[j] = rng.Uniform();
      bool feasible = true;
      for (const Halfspace& h : hs) {
        if (!h.Contains(y, 1e-12)) {
          feasible = false;
          break;
        }
      }
      if (!feasible) continue;
      EXPECT_LE(Dot(g, y - r.x), 1e-6)
          << "variational inequality violated, trial " << trial;
    }
  }
}

TEST(QpTest, WarmStartFromGivenPoint) {
  const auto hs = BoxHalfspaces(Vec{0.0, 0.0}, Vec{1.0, 1.0});
  const Vec start{0.1, 0.1};
  const QpResult r = ProjectOntoPolytope(Vec{0.9, 2.0}, hs, &start);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r.x[0], 0.9, 1e-7);
  EXPECT_NEAR(r.x[1], 1.0, 1e-7);
}

}  // namespace
}  // namespace toprr
