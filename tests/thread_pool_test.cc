#include "common/thread_pool.h"

#include <atomic>
#include <chrono>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace toprr {
namespace {

TEST(ThreadPoolTest, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 200; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 200);
}

TEST(ThreadPoolTest, WaitCoversTasksInFlightNotJustQueued) {
  ThreadPool pool(2);
  std::atomic<int> finished{0};
  for (int i = 0; i < 8; ++i) {
    pool.Submit([&finished] {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
      finished.fetch_add(1);
    });
  }
  pool.Wait();
  EXPECT_EQ(finished.load(), 8);
}

TEST(ThreadPoolTest, DestructorDrainsOutstandingTasks) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(3);
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
  }  // ~ThreadPool drains, then joins
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPoolTest, TasksMaySubmitMoreTasks) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int i = 0; i < 10; ++i) {
    pool.Submit([&pool, &counter] {
      counter.fetch_add(1);
      pool.Submit([&counter] { counter.fetch_add(1); });
    });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 20);
}

TEST(ThreadPoolTest, UsesMultipleWorkerThreads) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.num_threads(), 4u);
  std::mutex mu;
  std::set<std::thread::id> seen;
  // Barrier-style tasks: each waits until all four workers arrived, so
  // the ids cannot all come from one worker.
  std::atomic<int> arrived{0};
  for (int i = 0; i < 4; ++i) {
    pool.Submit([&mu, &seen, &arrived] {
      arrived.fetch_add(1);
      while (arrived.load() < 4) std::this_thread::yield();
      std::lock_guard<std::mutex> lock(mu);
      seen.insert(std::this_thread::get_id());
    });
  }
  pool.Wait();
  EXPECT_EQ(seen.size(), 4u);
}

TEST(ThreadPoolTest, MinimumOneWorker) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1u);
  std::atomic<int> counter{0};
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 1);
}

TEST(ThreadPoolTest, SharedPoolIsASingleton) {
  ThreadPool& a = SharedThreadPool();
  ThreadPool& b = SharedThreadPool();
  EXPECT_EQ(&a, &b);
  EXPECT_GE(a.num_threads(), 1u);
}

TEST(ThreadPoolTest, ResolveThreadCount) {
  EXPECT_EQ(ResolveThreadCount(1), 1u);
  EXPECT_EQ(ResolveThreadCount(7), 7u);
  EXPECT_GE(ResolveThreadCount(0), 1u);
  EXPECT_GE(ResolveThreadCount(-3), 1u);
}

}  // namespace
}  // namespace toprr
