#include "common/thread_pool.h"

#include <atomic>
#include <chrono>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace toprr {
namespace {

TEST(ThreadPoolTest, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 200; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 200);
}

TEST(ThreadPoolTest, WaitCoversTasksInFlightNotJustQueued) {
  ThreadPool pool(2);
  std::atomic<int> finished{0};
  for (int i = 0; i < 8; ++i) {
    pool.Submit([&finished] {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
      finished.fetch_add(1);
    });
  }
  pool.Wait();
  EXPECT_EQ(finished.load(), 8);
}

TEST(ThreadPoolTest, DestructorDrainsOutstandingTasks) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(3);
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
  }  // ~ThreadPool drains, then joins
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPoolTest, TasksMaySubmitMoreTasks) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int i = 0; i < 10; ++i) {
    pool.Submit([&pool, &counter] {
      counter.fetch_add(1);
      pool.Submit([&counter] { counter.fetch_add(1); });
    });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 20);
}

TEST(ThreadPoolTest, UsesMultipleWorkerThreads) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.num_threads(), 4u);
  std::mutex mu;
  std::set<std::thread::id> seen;
  // Barrier-style tasks: each waits until all four workers arrived, so
  // the ids cannot all come from one worker.
  std::atomic<int> arrived{0};
  for (int i = 0; i < 4; ++i) {
    pool.Submit([&mu, &seen, &arrived] {
      arrived.fetch_add(1);
      while (arrived.load() < 4) std::this_thread::yield();
      std::lock_guard<std::mutex> lock(mu);
      seen.insert(std::this_thread::get_id());
    });
  }
  pool.Wait();
  EXPECT_EQ(seen.size(), 4u);
}

TEST(ThreadPoolTest, MinimumOneWorker) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1u);
  std::atomic<int> counter{0};
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 1);
}

TEST(ThreadPoolTest, SharedPoolIsASingleton) {
  ThreadPool& a = SharedThreadPool();
  ThreadPool& b = SharedThreadPool();
  EXPECT_EQ(&a, &b);
  EXPECT_GE(a.num_threads(), 1u);
}

TEST(ThreadPoolTest, ResolveThreadCount) {
  EXPECT_EQ(ResolveThreadCount(1), 1u);
  EXPECT_EQ(ResolveThreadCount(7), 7u);
  EXPECT_GE(ResolveThreadCount(0), 1u);
  EXPECT_GE(ResolveThreadCount(-3), 1u);
}

TEST(WorkStealingDequeTest, OwnerPopsLifoThievesStealFifo) {
  WorkStealingDeque<int> deque;
  int items[] = {10, 20, 30, 40, 50};
  for (int& item : items) deque.Push(&item);
  EXPECT_EQ(deque.SizeApprox(), 5u);
  // Owner end: most recent first (cache-hot child).
  EXPECT_EQ(deque.Pop(), &items[4]);
  // Thief end: oldest first (largest pending subtree).
  EXPECT_EQ(deque.Steal(), &items[0]);
  EXPECT_EQ(deque.Steal(), &items[1]);
  EXPECT_EQ(deque.Pop(), &items[3]);
  EXPECT_EQ(deque.Pop(), &items[2]);
  EXPECT_EQ(deque.Pop(), nullptr);
  EXPECT_EQ(deque.Steal(), nullptr);
  EXPECT_EQ(deque.SizeApprox(), 0u);
}

TEST(WorkStealingDequeTest, GrowthPreservesEveryItem) {
  WorkStealingDeque<int> deque(8);  // force several doublings
  std::vector<int> items(1000);
  for (int i = 0; i < 1000; ++i) {
    items[static_cast<size_t>(i)] = i;
    deque.Push(&items[static_cast<size_t>(i)]);
  }
  std::set<int> seen;
  while (int* item = deque.Pop()) seen.insert(*item);
  EXPECT_EQ(seen.size(), 1000u);
  EXPECT_EQ(*seen.begin(), 0);
  EXPECT_EQ(*seen.rbegin(), 999);
}

TEST(WorkStealingDequeTest, ConcurrentOwnerAndThievesClaimEachItemOnce) {
  // The only safety property the executor needs: under concurrent Pop /
  // Steal (including buffer growth mid-race), every pushed item is
  // claimed by exactly one thread and none vanish.
  constexpr int kItems = 20000;
  constexpr int kThieves = 3;
  WorkStealingDeque<int> deque(8);
  std::vector<int> items(kItems);
  std::atomic<int> claimed{0};
  std::atomic<long long> sum{0};
  std::atomic<bool> owner_done{false};

  std::vector<std::thread> thieves;
  thieves.reserve(kThieves);
  for (int t = 0; t < kThieves; ++t) {
    thieves.emplace_back([&deque, &claimed, &sum, &owner_done] {
      while (claimed.load() < kItems) {
        if (int* item = deque.Steal()) {
          sum.fetch_add(*item);
          claimed.fetch_add(1);
        } else if (owner_done.load()) {
          // Owner stopped pushing; only races with other thieves remain.
          if (deque.SizeApprox() == 0 && claimed.load() >= kItems) break;
          std::this_thread::yield();
        } else {
          std::this_thread::yield();
        }
      }
    });
  }

  // Owner: push everything, popping a bit along the way to interleave
  // both ends, then drain.
  for (int i = 0; i < kItems; ++i) {
    items[static_cast<size_t>(i)] = i;
    deque.Push(&items[static_cast<size_t>(i)]);
    if (i % 7 == 0) {
      if (int* item = deque.Pop()) {
        sum.fetch_add(*item);
        claimed.fetch_add(1);
      }
    }
  }
  owner_done.store(true);
  while (claimed.load() < kItems) {
    if (int* item = deque.Pop()) {
      sum.fetch_add(*item);
      claimed.fetch_add(1);
    } else {
      std::this_thread::yield();
    }
  }
  for (std::thread& thief : thieves) thief.join();

  EXPECT_EQ(claimed.load(), kItems);
  // Sum of 0..kItems-1: catches double-claims that a pure count misses.
  EXPECT_EQ(sum.load(),
            static_cast<long long>(kItems) * (kItems - 1) / 2);
  EXPECT_EQ(deque.Pop(), nullptr);
}

TEST(StealVictimOrderTest, IsASeededPermutationOfPeers) {
  for (size_t workers : {2u, 3u, 8u}) {
    for (size_t self = 0; self < workers; ++self) {
      const std::vector<size_t> order = StealVictimOrder(self, workers, 42);
      EXPECT_EQ(order.size(), workers - 1);
      std::set<size_t> seen(order.begin(), order.end());
      EXPECT_EQ(seen.size(), order.size()) << "duplicate victims";
      EXPECT_EQ(seen.count(self), 0u) << "worker must not steal from itself";
      for (size_t victim : order) EXPECT_LT(victim, workers);
      // Deterministic: the same (worker, count, seed) gives the same
      // order, so executor behavior is reproducible.
      EXPECT_EQ(order, StealVictimOrder(self, workers, 42));
    }
  }
}

TEST(StealVictimOrderTest, DecorrelatedAcrossWorkersAndSeeds) {
  // Different workers must not share one victim order (that would send
  // every idle worker to the same deque); different seeds reshuffle.
  const std::vector<size_t> w0 = StealVictimOrder(0, 8, 42);
  const std::vector<size_t> w1 = StealVictimOrder(1, 8, 42);
  std::vector<size_t> w0_without_1;
  for (size_t v : w0) {
    if (v != 1) w0_without_1.push_back(v);
  }
  std::vector<size_t> w1_without_0;
  for (size_t v : w1) {
    if (v != 0) w1_without_0.push_back(v);
  }
  EXPECT_NE(w0_without_1, w1_without_0);
  EXPECT_NE(StealVictimOrder(0, 8, 42), StealVictimOrder(0, 8, 43));
  EXPECT_TRUE(StealVictimOrder(0, 1, 42).empty());
}

}  // namespace
}  // namespace toprr
