#include "core/partition.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "data/generator.h"
#include "pref/pref_space.h"
#include "topk/topk.h"

namespace toprr {
namespace {

// Paper Figure 1(a).
Dataset PaperFigure1Dataset() {
  return Dataset::FromRows({
      Vec{0.9, 0.4},  // p1 (id 0)
      Vec{0.7, 0.9},  // p2 (id 1)
      Vec{0.6, 0.2},  // p3 (id 2)
      Vec{0.3, 0.8},  // p4 (id 3)
      Vec{0.2, 0.3},  // p5 (id 4)
      Vec{0.1, 0.1},  // p6 (id 5)
  });
}

std::vector<int> AllIds(const Dataset& ds) {
  std::vector<int> ids(ds.size());
  for (size_t i = 0; i < ds.size(); ++i) ids[i] = static_cast<int>(i);
  return ids;
}

PrefRegion Interval(double lo, double hi) {
  PrefBox box;
  box.lo = Vec{lo};
  box.hi = Vec{hi};
  return PrefRegion::FromBox(box);
}

// Collects the sorted unique coordinates of 1-D Vall vertices.
std::vector<double> SortedUniqueCoords(const std::vector<Vec>& vall) {
  std::vector<double> xs;
  for (const Vec& v : vall) xs.push_back(v[0]);
  std::sort(xs.begin(), xs.end());
  xs.erase(std::unique(xs.begin(), xs.end(),
                       [](double a, double b) { return std::abs(a - b) < 1e-9; }),
           xs.end());
  return xs;
}

TEST(PartitionTest, PaperExampleKiprBreakpoints) {
  // For wR = [0.2, 0.8], k = 3 the maximal kIPRs are [0.2,0.4],
  // [0.4,2/3], [2/3,0.8] (paper Sec. 3.3), so plain TAS (splitting only at
  // true rank-change points in 1-D) accumulates exactly those breakpoints.
  const Dataset ds = PaperFigure1Dataset();
  PartitionConfig config;  // plain TAS
  const PartitionOutput out = PartitionPreferenceRegion(
      ds, AllIds(ds), 3, Interval(0.2, 0.8), config);
  EXPECT_FALSE(out.timed_out);
  const std::vector<double> xs = SortedUniqueCoords(out.vall);
  ASSERT_GE(xs.size(), 2u);
  EXPECT_NEAR(xs.front(), 0.2, 1e-9);
  EXPECT_NEAR(xs.back(), 0.8, 1e-9);
  // All breakpoints must be genuine kIPR boundaries: 0.4 and 2/3 must
  // appear; no other interior points are possible for plain TAS because
  // every splitting hyperplane is a score-equality of two options.
  EXPECT_TRUE(std::any_of(xs.begin(), xs.end(),
                          [](double x) { return std::abs(x - 0.4) < 1e-9; }));
  EXPECT_TRUE(std::any_of(xs.begin(), xs.end(), [](double x) {
    return std::abs(x - 2.0 / 3.0) < 1e-9;
  }));
}

TEST(PartitionTest, KiprRegionsAreInvariant) {
  // Each accepted region of plain TAS must satisfy Definition 3 at random
  // interior points, not only at its vertices.
  const Dataset ds = PaperFigure1Dataset();
  PartitionConfig config;
  const PartitionOutput out = PartitionPreferenceRegion(
      ds, AllIds(ds), 3, Interval(0.2, 0.8), config);
  // Reconstruct intervals from sorted breakpoints and verify invariance
  // inside each one.
  const std::vector<double> xs = SortedUniqueCoords(out.vall);
  for (size_t i = 0; i + 1 < xs.size(); ++i) {
    const double mid1 = xs[i] + (xs[i + 1] - xs[i]) * 0.25;
    const double mid2 = xs[i] + (xs[i + 1] - xs[i]) * 0.75;
    const TopkResult a = ComputeTopKReduced(ds, AllIds(ds), Vec{mid1}, 3);
    const TopkResult b = ComputeTopKReduced(ds, AllIds(ds), Vec{mid2}, 3);
    EXPECT_EQ(a.IdSet(), b.IdSet()) << "interval " << i;
    EXPECT_EQ(a.KthId(), b.KthId()) << "interval " << i;
  }
}

TEST(PartitionTest, Lemma5ReducesWork) {
  const Dataset ds = GenerateSynthetic(400, 3, Distribution::kIndependent,
                                       77);
  PrefBox box;
  box.lo = Vec{0.30, 0.30};
  box.hi = Vec{0.34, 0.34};
  PartitionConfig plain;
  PartitionConfig with_l5;
  with_l5.use_lemma5 = true;
  const PartitionOutput a = PartitionPreferenceRegion(
      ds, AllIds(ds), 10, PrefRegion::FromBox(box), plain);
  const PartitionOutput b = PartitionPreferenceRegion(
      ds, AllIds(ds), 10, PrefRegion::FromBox(box), with_l5);
  EXPECT_GT(b.lemma5_prunes, 0u);
  // Vall from both partitionings describes the same TopRR output; at
  // minimum the vertex count should not grow.
  EXPECT_LE(b.vall.size(), a.vall.size() + 4);
}

TEST(PartitionTest, Lemma7AcceptsEarlier) {
  const Dataset ds = GenerateSynthetic(400, 3, Distribution::kIndependent,
                                       78);
  PrefBox box;
  box.lo = Vec{0.25, 0.25};
  box.hi = Vec{0.32, 0.32};
  PartitionConfig without;
  without.use_lemma5 = true;
  PartitionConfig with = without;
  with.use_lemma7 = true;
  const PartitionOutput a = PartitionPreferenceRegion(
      ds, AllIds(ds), 10, PrefRegion::FromBox(box), without);
  const PartitionOutput b = PartitionPreferenceRegion(
      ds, AllIds(ds), 10, PrefRegion::FromBox(box), with);
  EXPECT_GT(b.lemma7_accepts, 0u);
  EXPECT_LE(b.vall.size(), a.vall.size());
  EXPECT_LE(b.regions_tested, a.regions_tested);
}

TEST(PartitionTest, OrderedInvarianceSplitsMore) {
  // PAC mode partitions at every reordering among the top k, hence at
  // least as many regions as kIPR-based TAS.
  const Dataset ds = PaperFigure1Dataset();
  PartitionConfig tas;
  PartitionConfig pac;
  pac.ordered_invariance = true;
  const PartitionOutput a = PartitionPreferenceRegion(
      ds, AllIds(ds), 3, Interval(0.2, 0.8), tas);
  const PartitionOutput b = PartitionPreferenceRegion(
      ds, AllIds(ds), 3, Interval(0.2, 0.8), pac);
  EXPECT_GE(b.regions_tested, a.regions_tested);
  // PAC must cut at the p1/p2 reordering point 5/7 inside [2/3, 0.8].
  const std::vector<double> xs = SortedUniqueCoords(b.vall);
  EXPECT_TRUE(std::any_of(xs.begin(), xs.end(), [](double x) {
    return std::abs(x - 5.0 / 7.0) < 1e-9;
  }));
}

TEST(PartitionTest, TopkUnionCollectsAllResultOptions) {
  const Dataset ds = PaperFigure1Dataset();
  PartitionConfig config;
  config.collect_topk_union = true;
  const PartitionOutput out = PartitionPreferenceRegion(
      ds, AllIds(ds), 3, Interval(0.2, 0.8), config);
  // Over wR = [0.2, 0.8]: sets {p2,p4,p1}, {p1,p2,p4}, {p1,p2,p3} -> union
  // {p1, p2, p3, p4} = ids {0, 1, 2, 3}.
  EXPECT_EQ(out.topk_union, (std::vector<int>{0, 1, 2, 3}));
}

TEST(PartitionTest, TimeBudgetAborts) {
  const Dataset ds = GenerateSynthetic(3000, 5,
                                       Distribution::kAnticorrelated, 79);
  PrefBox box;
  box.lo = Vec(4, 0.15);
  box.hi = Vec(4, 0.23);
  PartitionConfig config;
  config.time_budget_seconds = 1e-4;  // far too small
  const PartitionOutput out = PartitionPreferenceRegion(
      ds, AllIds(ds), 20, PrefRegion::FromBox(box), config);
  EXPECT_TRUE(out.timed_out);
}

TEST(PartitionTest, SingleKiprRegionAcceptsImmediately) {
  // A tiny region far from rank boundaries is accepted with no splits.
  const Dataset ds = PaperFigure1Dataset();
  PartitionConfig config;
  const PartitionOutput out = PartitionPreferenceRegion(
      ds, AllIds(ds), 3, Interval(0.45, 0.46), config);
  EXPECT_EQ(out.regions_split, 0u);
  EXPECT_EQ(out.regions_accepted, 1u);
  EXPECT_EQ(out.vall.size(), 2u);
}

TEST(PartitionTest, KSwitchReducesVall) {
  const Dataset ds = GenerateSynthetic(500, 4, Distribution::kIndependent,
                                       80);
  PrefBox box;
  box.lo = Vec{0.2, 0.2, 0.2};
  box.hi = Vec{0.25, 0.25, 0.25};
  PartitionConfig without;
  without.use_lemma5 = true;
  without.use_lemma7 = true;
  PartitionConfig with = without;
  with.use_kswitch = true;
  const PartitionOutput a = PartitionPreferenceRegion(
      ds, AllIds(ds), 10, PrefRegion::FromBox(box), without);
  const PartitionOutput b = PartitionPreferenceRegion(
      ds, AllIds(ds), 10, PrefRegion::FromBox(box), with);
  EXPECT_FALSE(a.timed_out);
  EXPECT_FALSE(b.timed_out);
  // k-switch is a heuristic; on average it reduces splits. Allow slack.
  EXPECT_LE(b.regions_split, a.regions_split * 2);
}

}  // namespace
}  // namespace toprr
