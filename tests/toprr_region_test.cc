// Tests for the generalized wR interfaces: arbitrary convex polytopes and
// non-convex unions of convex pieces (paper Sec. 3.1).
#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/toprr.h"
#include "data/generator.h"
#include "topk/topk.h"

namespace toprr {
namespace {

PrefBox Box2(double lo0, double lo1, double hi0, double hi1) {
  PrefBox box;
  box.lo = Vec{lo0, lo1};
  box.hi = Vec{hi0, hi1};
  return box;
}

// A triangle in 2-D preference space given by three vertices.
PrefRegion Triangle(const Vec& a, const Vec& b, const Vec& c) {
  std::vector<Vec> vertices = {a, b, c};
  // Facets: the three edges, oriented to contain the centroid.
  Vec centroid = (a + b + c) / 3.0;
  std::vector<RegionFacet> facets;
  const int edges[3][2] = {{0, 1}, {1, 2}, {2, 0}};
  for (const auto& e : edges) {
    const Vec& u = vertices[e[0]];
    const Vec& v = vertices[e[1]];
    Vec normal{v[1] - u[1], -(v[0] - u[0])};  // perpendicular to the edge
    double offset = Dot(normal, u);
    if (Dot(normal, centroid) > offset) {
      normal *= -1.0;
      offset = -offset;
    }
    RegionFacet f;
    f.halfspace = Halfspace(std::move(normal), offset);
    f.vertex_ids = {e[0], e[1]};
    facets.push_back(std::move(f));
  }
  return PrefRegion::FromVerticesAndFacets(std::move(vertices),
                                           std::move(facets));
}

TEST(ToprrRegionTest, BoxAsRegionMatchesBoxApi) {
  const Dataset ds = GenerateSynthetic(400, 3, Distribution::kIndependent,
                                       120);
  const PrefBox box = Box2(0.2, 0.25, 0.26, 0.31);
  const ToprrResult via_box = SolveToprr(ds, 5, box);
  const ToprrResult via_region =
      SolveToprrRegion(ds, 5, PrefRegion::FromBox(box));
  EXPECT_EQ(via_box.stats.candidates_after_filter,
            via_region.stats.candidates_after_filter);
  EXPECT_EQ(via_box.impact_halfspaces.size(),
            via_region.impact_halfspaces.size());
  Rng rng(121);
  for (int trial = 0; trial < 500; ++trial) {
    const Vec o{rng.Uniform(), rng.Uniform(), rng.Uniform()};
    EXPECT_EQ(via_box.Contains(o), via_region.Contains(o));
  }
}

TEST(ToprrRegionTest, TriangleRegionMatchesSampledGroundTruth) {
  const Dataset ds = GenerateSynthetic(300, 3, Distribution::kIndependent,
                                       122);
  const PrefRegion triangle =
      Triangle(Vec{0.2, 0.2}, Vec{0.3, 0.22}, Vec{0.24, 0.3});
  const int k = 5;
  const ToprrResult result = SolveToprrRegion(ds, k, triangle);
  ASSERT_FALSE(result.timed_out);
  ASSERT_GT(result.impact_halfspaces.size(), 0u);
  Rng rng(123);
  // Sample preference points inside the triangle by barycentric draws.
  const auto sample_triangle = [&]() {
    double u = rng.Uniform();
    double v = rng.Uniform();
    if (u + v > 1.0) {
      u = 1.0 - u;
      v = 1.0 - v;
    }
    return Vec{0.2 + u * (0.3 - 0.2) + v * (0.24 - 0.2),
               0.2 + u * (0.22 - 0.2) + v * (0.3 - 0.2)};
  };
  std::vector<int> all_ids(ds.size());
  for (size_t i = 0; i < ds.size(); ++i) all_ids[i] = static_cast<int>(i);
  for (int trial = 0; trial < 150; ++trial) {
    Vec o(3);
    for (size_t j = 0; j < 3; ++j) o[j] = rng.Uniform(0.6, 1.0);
    double closest = 1e9;
    for (const Halfspace& h : result.impact_halfspaces) {
      closest = std::min(closest,
                         std::abs(h.Violation(o)) / h.normal.Norm());
    }
    if (closest < 1e-6) continue;
    if (result.Contains(o)) {
      // Soundness: top-k at sampled triangle points.
      for (int s = 0; s < 40; ++s) {
        const Vec x = sample_triangle();
        const TopkResult topk = ComputeTopKReduced(ds, all_ids, x, k);
        EXPECT_GE(ReducedScore(o.data(), x), topk.KthScore() - 1e-12);
      }
    } else {
      // Completeness: some Vall vertex rejects it.
      bool rejected = false;
      for (const Vec& v : result.vall) {
        const TopkResult topk = ComputeTopKReduced(ds, all_ids, v, k);
        if (ReducedScore(o.data(), v) < topk.KthScore() - 1e-12) {
          rejected = true;
          break;
        }
      }
      EXPECT_TRUE(rejected);
    }
  }
}

TEST(ToprrRegionTest, VallStaysInsideTriangle) {
  const Dataset ds = GenerateSynthetic(200, 3, Distribution::kIndependent,
                                       124);
  const PrefRegion triangle =
      Triangle(Vec{0.15, 0.2}, Vec{0.25, 0.2}, Vec{0.2, 0.3});
  const ToprrResult result = SolveToprrRegion(ds, 4, triangle);
  for (const Vec& v : result.vall) {
    EXPECT_TRUE(triangle.Contains(v, 1e-7)) << v.ToString();
  }
}

TEST(ToprrPiecesTest, TwoHalvesEqualWhole) {
  // Split a box wR into two halves; the union is the original box, so the
  // merged pieces result must match the whole-box result.
  const Dataset ds = GenerateSynthetic(300, 3, Distribution::kIndependent,
                                       125);
  const int k = 5;
  const PrefBox whole = Box2(0.2, 0.2, 0.26, 0.26);
  const PrefBox left = Box2(0.2, 0.2, 0.23, 0.26);
  const PrefBox right = Box2(0.23, 0.2, 0.26, 0.26);
  const ToprrResult merged = SolveToprrPieces(
      ds, k, {PrefRegion::FromBox(left), PrefRegion::FromBox(right)});
  const ToprrResult direct = SolveToprr(ds, k, whole);
  ASSERT_FALSE(merged.timed_out);
  Rng rng(126);
  for (int trial = 0; trial < 800; ++trial) {
    const Vec o{rng.Uniform(), rng.Uniform(), rng.Uniform()};
    double closest = 1e9;
    for (const Halfspace& h : direct.impact_halfspaces) {
      closest = std::min(closest,
                         std::abs(h.Violation(o)) / h.normal.Norm());
    }
    for (const Halfspace& h : merged.impact_halfspaces) {
      closest = std::min(closest,
                         std::abs(h.Violation(o)) / h.normal.Norm());
    }
    if (closest < 1e-6) continue;
    EXPECT_EQ(merged.Contains(o), direct.Contains(o)) << o.ToString();
  }
}

TEST(ToprrPiecesTest, DisjointPiecesIntersectConstraints) {
  // A genuinely non-convex wR: two disjoint boxes. The result must be at
  // least as constrained as each piece alone.
  const Dataset ds = GenerateSynthetic(300, 3, Distribution::kIndependent,
                                       127);
  const int k = 5;
  const PrefBox a = Box2(0.15, 0.15, 0.18, 0.18);
  const PrefBox b = Box2(0.3, 0.3, 0.33, 0.33);
  const ToprrResult merged = SolveToprrPieces(
      ds, k, {PrefRegion::FromBox(a), PrefRegion::FromBox(b)});
  const ToprrResult only_a = SolveToprr(ds, k, a);
  const ToprrResult only_b = SolveToprr(ds, k, b);
  Rng rng(128);
  for (int trial = 0; trial < 800; ++trial) {
    const Vec o{rng.Uniform(), rng.Uniform(), rng.Uniform()};
    if (merged.Contains(o)) {
      EXPECT_TRUE(only_a.Contains(o, 1e-7));
      EXPECT_TRUE(only_b.Contains(o, 1e-7));
    }
    if (!only_a.Contains(o, -1e-9) || !only_b.Contains(o, -1e-9)) {
      EXPECT_FALSE(merged.Contains(o, -1e-7));
    }
  }
  // Geometry was rebuilt for the merged region.
  if (!merged.degenerate && !merged.geometry_skipped) {
    EXPECT_GE(merged.vertices.size(), 3u);
  }
}

}  // namespace
}  // namespace toprr
