#include "core/utk_filter.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "data/generator.h"
#include "topk/rskyband.h"
#include "topk/topk.h"

namespace toprr {
namespace {

Dataset PaperFigure1Dataset() {
  return Dataset::FromRows({
      Vec{0.9, 0.4}, Vec{0.7, 0.9}, Vec{0.6, 0.2},
      Vec{0.3, 0.8}, Vec{0.2, 0.3}, Vec{0.1, 0.1},
  });
}

PrefBox Interval(double lo, double hi) {
  PrefBox box;
  box.lo = Vec{lo};
  box.hi = Vec{hi};
  return box;
}

TEST(UtkFilterTest, PaperExample) {
  const Dataset ds = PaperFigure1Dataset();
  const std::vector<int> utk = ExactTopkUnion(ds, Interval(0.2, 0.8), 3);
  EXPECT_EQ(utk, (std::vector<int>{0, 1, 2, 3}));
}

TEST(UtkFilterTest, SubsetOfRSkybandAndCoversSamples) {
  const Dataset ds = GenerateSynthetic(400, 3, Distribution::kIndependent,
                                       50);
  PrefBox box;
  box.lo = Vec{0.2, 0.25};
  box.hi = Vec{0.26, 0.31};
  const int k = 6;
  const std::vector<int> utk = ExactTopkUnion(ds, box, k);
  const std::vector<int> rsky = RSkyband(ds, box, k);
  // UTK is the tightest filter: a subset of the r-skyband.
  for (int id : utk) {
    EXPECT_TRUE(std::binary_search(rsky.begin(), rsky.end(), id));
  }
  EXPECT_LE(utk.size(), rsky.size());
  // Every sampled top-k member must be in the UTK set (exactness, lower
  // bound direction).
  Rng rng(51);
  for (int trial = 0; trial < 200; ++trial) {
    Vec x(2);
    for (size_t j = 0; j < 2; ++j) {
      x[j] = rng.Uniform(box.lo[j], box.hi[j]);
    }
    const TopkResult topk = ComputeTopK(ds, FullWeight(x), k);
    for (const ScoredOption& e : topk.entries) {
      EXPECT_TRUE(std::binary_search(utk.begin(), utk.end(), e.id))
          << "top-k member " << e.id << " missing from UTK set";
    }
  }
}

TEST(UtkFilterTest, EveryUtkMemberHasAWitness) {
  // Exactness, upper bound direction: each reported option must actually
  // appear in some top-k within the box. We verify via fine sampling in a
  // 1-D preference space where sampling is conclusive enough.
  const Dataset ds = PaperFigure1Dataset();
  const int k = 2;
  const std::vector<int> utk = ExactTopkUnion(ds, Interval(0.2, 0.8), k);
  for (int id : utk) {
    bool witnessed = false;
    for (int s = 0; s <= 2000 && !witnessed; ++s) {
      const double x = 0.2 + 0.6 * s / 2000.0;
      const TopkResult topk = ComputeTopK(ds, Vec{x, 1.0 - x}, k);
      for (const ScoredOption& e : topk.entries) {
        if (e.id == id) {
          witnessed = true;
          break;
        }
      }
    }
    EXPECT_TRUE(witnessed) << "option " << id << " reported but never seen";
  }
}

}  // namespace
}  // namespace toprr
