// Checkpoint + WAL recovery tests, including the seeded corruption
// corpus from the durability issue: every mutant of a real on-disk
// generation must either recover to a state that existed on the true
// chain (bit-identical snapshot id) or be rejected with a typed error.
// No mutant may crash the process or load wrong data.
#include "data/recovery.h"

#include <dirent.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "data/dataset.h"
#include "data/snapshot.h"
#include "data/wal.h"

namespace toprr {
namespace {

std::string MakeTempDir() {
  char tmpl[] = "/tmp/toprr_recovery_test_XXXXXX";
  const char* dir = ::mkdtemp(tmpl);
  EXPECT_NE(dir, nullptr);
  return dir;
}

void WriteFileBytes(const std::string& path, const std::string& bytes) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  if (!bytes.empty()) {
    ASSERT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), f), bytes.size());
  }
  std::fclose(f);
}

std::string ReadFileBytes(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  EXPECT_NE(f, nullptr) << path;
  if (f == nullptr) return "";
  std::string bytes;
  char buf[64 * 1024];
  size_t got;
  while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0) bytes.append(buf, got);
  std::fclose(f);
  return bytes;
}

std::vector<std::string> ListDir(const std::string& dir) {
  std::vector<std::string> names;
  DIR* d = ::opendir(dir.c_str());
  EXPECT_NE(d, nullptr) << dir;
  if (d == nullptr) return names;
  while (struct dirent* entry = ::readdir(d)) {
    const std::string name = entry->d_name;
    if (name != "." && name != "..") names.push_back(name);
  }
  ::closedir(d);
  return names;
}

void RemoveAllIn(const std::string& dir) {
  for (const std::string& name : ListDir(dir)) {
    ::unlink((dir + "/" + name).c_str());
  }
}

bool HasPrefixSuffix(const std::string& name, const char* prefix,
                     const char* suffix) {
  const size_t pre = std::strlen(prefix);
  const size_t suf = std::strlen(suffix);
  return name.size() > pre + suf && name.compare(0, pre, prefix) == 0 &&
         name.compare(name.size() - suf, suf, suffix) == 0;
}

Dataset MakeBootstrap(size_t n, size_t d) {
  Dataset data(n, d);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < d; ++j) {
      data.At(i, j) = 0.01 * static_cast<double>(i * d + j + 1);
    }
  }
  return data;
}

DurabilityOptions FastOptions(const std::string& dir) {
  DurabilityOptions options;
  options.data_dir = dir;
  options.fsync_policy = FsyncPolicy::kOff;  // tests care about bytes
  options.checkpoint_every = 0;              // only the open-time checkpoint
  return options;
}

/// One closed session's on-disk generation plus the ground-truth chain:
/// the (seq, id) of the bootstrap root and of every publish.
struct SessionFiles {
  std::string ckpt_name;
  std::string wal_name;
  std::string ckpt_bytes;
  std::string wal_bytes;
  std::map<uint64_t, uint64_t> id_by_seq;
  uint64_t head_seq = 0;
};

SessionFiles RunSealedSession(int publishes) {
  SessionFiles session;
  const std::string dir = MakeTempDir();
  const Dataset bootstrap = MakeBootstrap(20, 3);
  std::string error;
  auto durable = DurableCatalog::Open(FastOptions(dir), &bootstrap, &error);
  EXPECT_NE(durable, nullptr) << error;
  if (durable == nullptr) return session;
  SnapshotPtr root = durable->catalog()->Current();
  session.id_by_seq[root->seq()] = root->id();
  for (int i = 1; i <= publishes; ++i) {
    Vec row(3);
    row[0] = 0.5 + 0.01 * i;
    row[1] = 0.25;
    row[2] = 0.125 * i;
    const auto outcome =
        durable->Publish({row}, {static_cast<uint64_t>(i - 1)},
                         /*token=*/77, /*publish_id=*/static_cast<uint64_t>(i));
    EXPECT_TRUE(outcome.ok) << outcome.error;
    session.id_by_seq[outcome.snapshot->seq()] = outcome.snapshot->id();
    session.head_seq = outcome.snapshot->seq();
  }
  durable.reset();  // close; checkpoint_every=0 leaves the WAL as the tail
  for (const std::string& name : ListDir(dir)) {
    if (HasPrefixSuffix(name, "checkpoint-", ".ckpt")) {
      EXPECT_TRUE(session.ckpt_name.empty()) << "more than one checkpoint";
      session.ckpt_name = name;
    } else if (HasPrefixSuffix(name, "wal-", ".log")) {
      EXPECT_TRUE(session.wal_name.empty()) << "more than one wal";
      session.wal_name = name;
    }
  }
  EXPECT_FALSE(session.ckpt_name.empty());
  EXPECT_FALSE(session.wal_name.empty());
  session.ckpt_bytes = ReadFileBytes(dir + "/" + session.ckpt_name);
  session.wal_bytes = ReadFileBytes(dir + "/" + session.wal_name);
  return session;
}

/// Offsets of every frame boundary in a record stream (0, after frame 1,
/// ...), trusting only the length headers.
std::vector<size_t> FrameBoundaries(const std::string& bytes) {
  std::vector<size_t> bounds = {0};
  size_t pos = 0;
  while (pos + kWalHeaderBytes <= bytes.size()) {
    uint32_t len = 0;
    for (int i = 0; i < 4; ++i) {
      len |= static_cast<uint32_t>(
                 static_cast<unsigned char>(bytes[pos + static_cast<size_t>(i)]))
             << (8 * i);
    }
    if (bytes.size() - pos - kWalHeaderBytes < len) break;
    pos += kWalHeaderBytes + len;
    bounds.push_back(pos);
  }
  return bounds;
}

/// Opens a scratch generation assembled from the given bytes and checks
/// the recover-or-reject contract against the session's true chain.
/// Returns true when the mutant recovered.
bool CheckMutant(const SessionFiles& session, const std::string& scratch,
                 const std::string& ckpt_bytes, const std::string& wal_bytes) {
  RemoveAllIn(scratch);
  WriteFileBytes(scratch + "/" + session.ckpt_name, ckpt_bytes);
  WriteFileBytes(scratch + "/" + session.wal_name, wal_bytes);
  std::string error;
  auto durable = DurableCatalog::Open(FastOptions(scratch), nullptr, &error);
  if (durable == nullptr) {
    EXPECT_FALSE(error.empty());  // typed rejection, never silent
    return false;
  }
  const RecoveryStats& recovery = durable->recovery();
  EXPECT_TRUE(recovery.recovered);
  const auto truth = session.id_by_seq.find(recovery.snapshot_seq);
  EXPECT_NE(truth, session.id_by_seq.end())
      << "recovered to seq " << recovery.snapshot_seq
      << " which was never published";
  if (truth != session.id_by_seq.end()) {
    EXPECT_EQ(recovery.snapshot_id, truth->second)
        << "recovered snapshot id differs from the true chain at seq "
        << recovery.snapshot_seq;
  }
  return true;
}

TEST(PublishWalRecordTest, EncodeDecodeRoundTrips) {
  PublishWalRecord record;
  record.parent_id = 0x1111222233334444ull;
  record.parent_seq = 7;
  record.child_id = 0x5555666677778888ull;
  record.child_seq = 8;
  record.token = 42;
  record.publish_id = 9001;
  record.first_insert_id = 123;
  record.dim = 3;
  record.inserts = {Vec{0.1, 0.2, 0.3}, Vec{0.4, 0.5, 0.6}};
  record.deletes = {4, 9, 77};
  const std::string payload = EncodePublishWalRecord(record);

  PublishWalRecord decoded;
  std::string error;
  ASSERT_TRUE(DecodePublishWalRecord(payload, &decoded, &error)) << error;
  EXPECT_EQ(decoded.parent_id, record.parent_id);
  EXPECT_EQ(decoded.parent_seq, record.parent_seq);
  EXPECT_EQ(decoded.child_id, record.child_id);
  EXPECT_EQ(decoded.child_seq, record.child_seq);
  EXPECT_EQ(decoded.token, record.token);
  EXPECT_EQ(decoded.publish_id, record.publish_id);
  EXPECT_EQ(decoded.first_insert_id, record.first_insert_id);
  EXPECT_EQ(decoded.dim, record.dim);
  EXPECT_EQ(decoded.deletes, record.deletes);
  ASSERT_EQ(decoded.inserts.size(), 2u);
  EXPECT_EQ(decoded.inserts[1][2], 0.6);
}

TEST(PublishWalRecordTest, DecodeRejectsEveryTruncation) {
  PublishWalRecord record;
  record.child_seq = 2;
  record.dim = 2;
  record.inserts = {Vec{0.1, 0.2}};
  record.deletes = {3};
  const std::string payload = EncodePublishWalRecord(record);
  for (size_t cut = 0; cut < payload.size(); ++cut) {
    PublishWalRecord decoded;
    std::string error;
    EXPECT_FALSE(
        DecodePublishWalRecord(payload.substr(0, cut), &decoded, &error))
        << "truncation to " << cut << " bytes decoded";
    EXPECT_FALSE(error.empty());
  }
}

TEST(PublishWalRecordTest, DecodeRejectsImplausibleShapes) {
  PublishWalRecord record;
  record.dim = 2;
  record.inserts = {Vec{0.1, 0.2}};
  std::string payload = EncodePublishWalRecord(record);
  // dim sits right after kind + 7 u64 fields.
  const size_t dim_offset = 4 + 7 * 8;
  std::string zero_dim = payload;
  zero_dim[dim_offset] = '\0';
  PublishWalRecord decoded;
  std::string error;
  EXPECT_FALSE(DecodePublishWalRecord(zero_dim, &decoded, &error));
  std::string huge_dim = payload;
  huge_dim[dim_offset + 2] = '\x7f';  // dim |= 0x7f0000 > kMaxDim
  EXPECT_FALSE(DecodePublishWalRecord(huge_dim, &decoded, &error));
}

TEST(CheckpointTest, RoundTripsSnapshotAndDedupeTable) {
  const std::string dir = MakeTempDir();
  const std::string path = dir + "/checkpoint-x.ckpt";
  const Dataset bootstrap = MakeBootstrap(30, 3);
  MutableCatalog catalog(bootstrap);
  catalog.StageInsert(Vec{0.9, 0.8, 0.7});
  ASSERT_TRUE(catalog.StageDelete(5));
  SnapshotPtr snapshot = catalog.Publish();

  std::vector<AppliedPublishRecord> applied(2);
  applied[0].token = 10;
  applied[0].publish_id = 1;
  applied[0].snapshot_id = snapshot->id();
  applied[0].snapshot_seq = snapshot->seq();
  applied[1].token = 11;
  applied[1].publish_id = 2;

  std::string error;
  ASSERT_TRUE(WriteCheckpointFile(path, *snapshot, applied, &error)) << error;

  std::vector<AppliedPublishRecord> loaded_applied;
  SnapshotPtr loaded = LoadCheckpointFile(path, &loaded_applied, &error);
  ASSERT_NE(loaded, nullptr) << error;
  EXPECT_EQ(loaded->id(), snapshot->id());
  EXPECT_EQ(loaded->seq(), snapshot->seq());
  EXPECT_EQ(loaded->parent_id(), snapshot->parent_id());
  EXPECT_EQ(loaded->rows(), snapshot->rows());
  EXPECT_EQ(loaded->live_rows(), snapshot->live_rows());
  EXPECT_FALSE(loaded->IsLive(5));
  EXPECT_EQ(loaded->Row(30)[0], 0.9);  // the inserted row (id = old rows)
  ASSERT_EQ(loaded_applied.size(), 2u);
  EXPECT_EQ(loaded_applied[0].token, 10u);
  EXPECT_EQ(loaded_applied[0].snapshot_id, snapshot->id());
  EXPECT_EQ(loaded_applied[1].publish_id, 2u);
}

TEST(CheckpointTest, LoadRejectsByteFlip) {
  const std::string dir = MakeTempDir();
  const std::string path = dir + "/checkpoint-x.ckpt";
  const Dataset bootstrap = MakeBootstrap(8, 2);
  SnapshotPtr snapshot = DatasetSnapshot::FromDataset(bootstrap);
  std::string error;
  ASSERT_TRUE(WriteCheckpointFile(path, *snapshot, {}, &error)) << error;
  std::string bytes = ReadFileBytes(path);
  bytes[bytes.size() / 2] ^= 0x10;
  WriteFileBytes(path, bytes);
  SnapshotPtr loaded = LoadCheckpointFile(path, nullptr, &error);
  EXPECT_EQ(loaded, nullptr);
  EXPECT_FALSE(error.empty());
}

TEST(DurableCatalogTest, FreshDirBootstrapsThenRecoversWithDedupe) {
  const std::string dir = MakeTempDir();
  const Dataset bootstrap = MakeBootstrap(20, 3);
  std::string error;
  uint64_t head_id = 0;
  uint64_t head_seq = 0;
  {
    auto durable = DurableCatalog::Open(FastOptions(dir), &bootstrap, &error);
    ASSERT_NE(durable, nullptr) << error;
    EXPECT_FALSE(durable->recovery().recovered);  // fresh bootstrap
    for (int i = 1; i <= 4; ++i) {
      const auto outcome = durable->Publish(
          {Vec{0.1 * i, 0.2, 0.3}}, {static_cast<uint64_t>(i - 1)},
          /*token=*/77, /*publish_id=*/static_cast<uint64_t>(i));
      ASSERT_TRUE(outcome.ok) << outcome.error;
      head_id = outcome.snapshot->id();
      head_seq = outcome.snapshot->seq();
    }
    const DurableCounters counters = durable->counters();
    EXPECT_EQ(counters.wal_appends, 4u);
    EXPECT_GT(counters.wal_bytes, 0u);
    EXPECT_EQ(counters.checkpoints_written, 1u);  // the open-time seal
  }
  {
    // Second generation: replays the 4-record tail onto the checkpoint.
    auto durable = DurableCatalog::Open(FastOptions(dir), nullptr, &error);
    ASSERT_NE(durable, nullptr) << error;
    EXPECT_TRUE(durable->recovery().recovered);
    EXPECT_EQ(durable->recovery().replayed_records, 4u);
    EXPECT_EQ(durable->recovery().snapshot_id, head_id);
    EXPECT_EQ(durable->recovery().snapshot_seq, head_seq);
    ASSERT_EQ(durable->recovered_publishes().size(), 4u);
    EXPECT_EQ(durable->recovered_publishes()[3].token, 77u);
    EXPECT_EQ(durable->recovered_publishes()[3].publish_id, 4u);
    EXPECT_EQ(durable->recovered_publishes()[3].snapshot_id, head_id);
  }
  {
    // Third generation: the replayed dedupe table was persisted into the
    // second generation's seal checkpoint, so it survives with an empty
    // WAL tail too.
    auto durable = DurableCatalog::Open(FastOptions(dir), nullptr, &error);
    ASSERT_NE(durable, nullptr) << error;
    EXPECT_TRUE(durable->recovery().recovered);
    EXPECT_EQ(durable->recovery().replayed_records, 0u);
    EXPECT_EQ(durable->recovery().snapshot_id, head_id);
    ASSERT_EQ(durable->recovered_publishes().size(), 4u);
    EXPECT_EQ(durable->recovered_publishes()[0].publish_id, 1u);
  }
}

TEST(DurableCatalogTest, TornWalTailIsTruncatedOnRecovery) {
  SessionFiles session = RunSealedSession(3);
  const std::string scratch = MakeTempDir();
  WriteFileBytes(scratch + "/" + session.ckpt_name, session.ckpt_bytes);
  // A crash mid-append: half a frame of a fourth record.
  std::string torn = session.wal_bytes;
  std::string extra;
  FrameWalRecord(std::string(40, 'x'), &extra);
  torn.append(extra.substr(0, extra.size() - 11));
  WriteFileBytes(scratch + "/" + session.wal_name, torn);

  std::string error;
  auto durable = DurableCatalog::Open(FastOptions(scratch), nullptr, &error);
  ASSERT_NE(durable, nullptr) << error;
  EXPECT_TRUE(durable->recovery().wal_tail_truncated);
  EXPECT_EQ(durable->recovery().replayed_records, 3u);
  EXPECT_EQ(durable->recovery().snapshot_seq, session.head_seq);
  EXPECT_EQ(durable->recovery().snapshot_id,
            session.id_by_seq.at(session.head_seq));
}

TEST(DurableCatalogTest, MidWalCorruptionIsATypedRejection) {
  SessionFiles session = RunSealedSession(3);
  const std::string scratch = MakeTempDir();
  std::string corrupt = session.wal_bytes;
  corrupt[kWalHeaderBytes + 5] ^= 0x01;  // damage the FIRST record
  EXPECT_FALSE(
      CheckMutant(session, scratch, session.ckpt_bytes, corrupt));
}

TEST(DurableCatalogTest, DuplicatedWalRecordsAreSkipped) {
  SessionFiles session = RunSealedSession(3);
  const std::string scratch = MakeTempDir();
  // The whole log appended twice: every second-copy record is already
  // covered by the replayed first copy.
  EXPECT_TRUE(CheckMutant(session, scratch, session.ckpt_bytes,
                          session.wal_bytes + session.wal_bytes));
  // And a single duplicated record in the middle.
  const std::vector<size_t> bounds = FrameBoundaries(session.wal_bytes);
  ASSERT_GE(bounds.size(), 3u);
  const std::string second =
      session.wal_bytes.substr(bounds[1], bounds[2] - bounds[1]);
  EXPECT_TRUE(CheckMutant(session, scratch, session.ckpt_bytes,
                          session.wal_bytes + second));
}

TEST(DurableCatalogTest, StaleGenerationCheckpointIsSkipped) {
  SessionFiles session = RunSealedSession(3);
  const std::string scratch = MakeTempDir();
  WriteFileBytes(scratch + "/" + session.ckpt_name, session.ckpt_bytes);
  WriteFileBytes(scratch + "/" + session.wal_name, session.wal_bytes);
  // A renamed copy claiming a newer seq than it contains: recovery must
  // reject it (filename/header mismatch) and fall back to the real one.
  WriteFileBytes(scratch + "/checkpoint-00000000000000ff.ckpt",
                 session.ckpt_bytes);
  std::string error;
  auto durable = DurableCatalog::Open(FastOptions(scratch), nullptr, &error);
  ASSERT_NE(durable, nullptr) << error;
  EXPECT_EQ(durable->recovery().snapshot_seq, session.head_seq);
  EXPECT_EQ(durable->recovery().snapshot_id,
            session.id_by_seq.at(session.head_seq));
}

TEST(DurableCatalogTest, WalWithoutAnyCheckpointIsRejected) {
  SessionFiles session = RunSealedSession(3);
  const std::string scratch = MakeTempDir();
  WriteFileBytes(scratch + "/" + session.wal_name, session.wal_bytes);
  std::string error;
  auto durable = DurableCatalog::Open(FastOptions(scratch), nullptr, &error);
  EXPECT_EQ(durable, nullptr);
  EXPECT_NE(error.find("no checkpoint"), std::string::npos) << error;
}

// The fuzz corpus over the WAL: truncate at every byte offset (the crash
// shape -- every one of these must RECOVER to a true-chain prefix) and
// flip every byte (must recover a prefix or reject; never wrong data).
TEST(RecoveryFuzzTest, WalMutantsRecoverOrReject) {
  SessionFiles session = RunSealedSession(4);
  ASSERT_FALSE(session.wal_bytes.empty());
  const std::string scratch = MakeTempDir();

  size_t recovered = 0;
  size_t rejected = 0;
  for (size_t cut = 0; cut <= session.wal_bytes.size(); ++cut) {
    const bool ok = CheckMutant(session, scratch, session.ckpt_bytes,
                                session.wal_bytes.substr(0, cut));
    // Truncation is exactly the crash artifact; it must always recover.
    EXPECT_TRUE(ok) << "truncation to " << cut << " bytes was rejected";
    ++recovered;
  }
  for (size_t at = 0; at < session.wal_bytes.size(); ++at) {
    std::string flipped = session.wal_bytes;
    flipped[at] ^= 0x20;
    if (CheckMutant(session, scratch, session.ckpt_bytes, flipped)) {
      ++recovered;
    } else {
      ++rejected;
    }
  }
  // Sanity: the corpus exercised both outcomes.
  EXPECT_GT(recovered, session.wal_bytes.size());
  EXPECT_GT(rejected, 0u);
}

// Same contract for the checkpoint file. Checkpoints land via rename, so
// (unlike the WAL) any truncation is damage: every strict prefix and
// every byte flip must reject; only the pristine file recovers.
TEST(RecoveryFuzzTest, CheckpointMutantsRecoverOrReject) {
  SessionFiles session = RunSealedSession(4);
  ASSERT_FALSE(session.ckpt_bytes.empty());
  const std::string scratch = MakeTempDir();

  EXPECT_TRUE(CheckMutant(session, scratch, session.ckpt_bytes,
                          session.wal_bytes));

  const std::vector<size_t> bounds = FrameBoundaries(session.ckpt_bytes);
  std::vector<size_t> cuts;
  for (const size_t b : bounds) {
    if (b < session.ckpt_bytes.size()) cuts.push_back(b);
    if (b + 3 < session.ckpt_bytes.size()) cuts.push_back(b + 3);
  }
  for (size_t cut = 0; cut < session.ckpt_bytes.size(); cut += 173) {
    cuts.push_back(cut);
  }
  for (const size_t cut : cuts) {
    EXPECT_FALSE(CheckMutant(session, scratch,
                             session.ckpt_bytes.substr(0, cut),
                             session.wal_bytes))
        << "truncated checkpoint (" << cut << " bytes) was accepted";
  }
  for (size_t at = 0; at < session.ckpt_bytes.size(); at += 97) {
    std::string flipped = session.ckpt_bytes;
    flipped[at] ^= 0x04;
    EXPECT_FALSE(CheckMutant(session, scratch, flipped, session.wal_bytes))
        << "flipped checkpoint byte " << at << " was accepted";
  }
}

}  // namespace
}  // namespace toprr
