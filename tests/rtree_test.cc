#include "index/rtree.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "data/generator.h"
#include "topk/skyband.h"
#include "topk/topk.h"

namespace toprr {
namespace {

TEST(RTreeTest, BulkLoadCoversAllPoints) {
  const Dataset ds = GenerateSynthetic(1000, 3,
                                       Distribution::kIndependent, 1);
  const RTree tree = RTree::BulkLoad(ds);
  // Count leaf entries and check MBR containment.
  size_t total = 0;
  for (size_t nid = 0; nid < tree.num_nodes(); ++nid) {
    const RTree::Node& node = tree.node(static_cast<int>(nid));
    if (!node.is_leaf) continue;
    total += node.children.size();
    for (int32_t pid : node.children) {
      for (size_t j = 0; j < ds.dim(); ++j) {
        EXPECT_LE(node.lo[j], ds.At(pid, j) + 1e-12);
        EXPECT_GE(node.hi[j], ds.At(pid, j) - 1e-12);
      }
    }
  }
  EXPECT_EQ(total, ds.size());
}

TEST(RTreeTest, InnerNodesContainChildren) {
  const Dataset ds = GenerateSynthetic(5000, 2,
                                       Distribution::kIndependent, 2);
  const RTree tree = RTree::BulkLoad(ds);
  for (size_t nid = 0; nid < tree.num_nodes(); ++nid) {
    const RTree::Node& node = tree.node(static_cast<int>(nid));
    if (node.is_leaf) continue;
    for (int32_t cid : node.children) {
      const RTree::Node& child = tree.node(cid);
      for (size_t j = 0; j < ds.dim(); ++j) {
        EXPECT_LE(node.lo[j], child.lo[j] + 1e-12);
        EXPECT_GE(node.hi[j], child.hi[j] - 1e-12);
      }
    }
  }
}

TEST(RTreeTest, TinyDatasetSingleLeafRoot) {
  const Dataset ds = GenerateSynthetic(10, 2, Distribution::kIndependent, 3);
  const RTree tree = RTree::BulkLoad(ds);
  EXPECT_TRUE(tree.node(tree.root()).is_leaf);
  EXPECT_EQ(tree.node(tree.root()).children.size(), 10u);
}

TEST(RTreeTopKTest, MatchesLinearScan) {
  const Dataset ds = GenerateSynthetic(3000, 4,
                                       Distribution::kIndependent, 4);
  const RTree tree = RTree::BulkLoad(ds);
  for (uint64_t seed = 0; seed < 5; ++seed) {
    Rng rng(seed);
    Vec w(4);
    double sum = 0.0;
    for (size_t j = 0; j < 4; ++j) {
      w[j] = rng.Uniform();
      sum += w[j];
    }
    w /= sum;
    const std::vector<int> via_tree = RTreeTopK(ds, tree, w, 10);
    const TopkResult linear = ComputeTopK(ds, w, 10);
    ASSERT_EQ(via_tree.size(), 10u);
    for (size_t i = 0; i < 10; ++i) {
      EXPECT_NEAR(ds.Score(via_tree[i], w), linear.entries[i].score, 1e-12)
          << "rank " << i << " seed " << seed;
    }
  }
}

TEST(BbsSkybandTest, MatchesSortBasedSkyband) {
  for (int k : {1, 3, 8}) {
    const Dataset ds = GenerateSynthetic(2000, 3,
                                         Distribution::kAnticorrelated, 5);
    const RTree tree = RTree::BulkLoad(ds);
    const std::vector<int> bbs = BbsKSkyband(ds, tree, k);
    const std::vector<int> sorted = SortBasedKSkyband(ds, k);
    EXPECT_EQ(bbs, sorted) << "k=" << k;
  }
}

TEST(BbsSkybandTest, SkylineOfDominatedChain) {
  // p0 dominates p1 dominates p2: skyline = {p0}, 2-skyband = {p0, p1}.
  const Dataset ds = Dataset::FromRows(
      {Vec{0.9, 0.9}, Vec{0.5, 0.5}, Vec{0.1, 0.1}});
  const RTree tree = RTree::BulkLoad(ds);
  EXPECT_EQ(BbsKSkyband(ds, tree, 1), (std::vector<int>{0}));
  EXPECT_EQ(BbsKSkyband(ds, tree, 2), (std::vector<int>{0, 1}));
  EXPECT_EQ(BbsKSkyband(ds, tree, 3), (std::vector<int>{0, 1, 2}));
}

}  // namespace
}  // namespace toprr
