// Framing-layer robustness tests (serve/framing.h): short reads, short
// writes, EINTR injection, clean vs mid-frame EOF, and oversized-prefix
// rejection, all driven through a deliberately fragmenting mock stream.
// Labeled `serve` through the CMake test glob.
#include "serve/framing.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <string>

#include <unistd.h>

namespace toprr {
namespace serve {
namespace {

// A ByteStream over an in-memory buffer that fragments every transfer
// and periodically fails with EINTR: reads hand out at most
// `max_chunk` bytes, and every `eintr_period`-th call (when set) fails
// with errno = EINTR instead of transferring. This is exactly the
// worst-case behavior a stream socket is allowed to exhibit, so the
// framing loops must reassemble frames through it byte by byte.
class FragmentingStream : public ByteStream {
 public:
  FragmentingStream(std::string input, size_t max_chunk,
                    int eintr_period = 0)
      : input_(std::move(input)),
        max_chunk_(max_chunk),
        eintr_period_(eintr_period) {}

  ssize_t ReadSome(void* buffer, size_t length) override {
    if (MaybeInterrupt()) return -1;
    if (read_pos_ >= input_.size()) return 0;  // EOF
    const size_t n =
        std::min({length, max_chunk_, input_.size() - read_pos_});
    std::memcpy(buffer, input_.data() + read_pos_, n);
    read_pos_ += n;
    return static_cast<ssize_t>(n);
  }

  ssize_t WriteSome(const void* buffer, size_t length) override {
    if (MaybeInterrupt()) return -1;
    const size_t n = std::min(length, max_chunk_);
    output_.append(static_cast<const char*>(buffer), n);
    return static_cast<ssize_t>(n);
  }

  const std::string& output() const { return output_; }
  int calls() const { return calls_; }

 private:
  bool MaybeInterrupt() {
    ++calls_;
    if (eintr_period_ > 0 && calls_ % eintr_period_ == 0) {
      errno = EINTR;
      return true;
    }
    return false;
  }

  std::string input_;
  std::string output_;
  size_t read_pos_ = 0;
  size_t max_chunk_;
  int eintr_period_;
  int calls_ = 0;
};

// Length-prefixes `payload` the way WriteFrame does.
std::string Framed(const std::string& payload) {
  std::string framed;
  const uint32_t length = static_cast<uint32_t>(payload.size());
  for (int shift = 0; shift < 32; shift += 8) {
    framed.push_back(static_cast<char>((length >> shift) & 0xff));
  }
  return framed + payload;
}

TEST(ServeFramingTest, WriteThenReadThroughOneBytePipes) {
  const std::string payload = "the quick brown fox";
  FragmentingStream writer("", /*max_chunk=*/1);
  ASSERT_TRUE(WriteFrame(writer, payload));
  EXPECT_EQ(writer.output(), Framed(payload));

  FragmentingStream reader(writer.output(), /*max_chunk=*/1);
  std::string decoded;
  EXPECT_EQ(ReadFrame(reader, &decoded), FrameReadStatus::kOk);
  EXPECT_EQ(decoded, payload);
  // One byte per call: the loops really did iterate per byte.
  EXPECT_GE(reader.calls(), static_cast<int>(payload.size() + 4));
}

TEST(ServeFramingTest, SurvivesEintrStorms) {
  const std::string payload(1000, 'x');
  // Every 3rd call fails with EINTR, on both sides.
  FragmentingStream writer("", /*max_chunk=*/7, /*eintr_period=*/3);
  ASSERT_TRUE(WriteFrame(writer, payload));
  FragmentingStream reader(writer.output(), /*max_chunk=*/5,
                           /*eintr_period=*/3);
  std::string decoded;
  EXPECT_EQ(ReadFrame(reader, &decoded), FrameReadStatus::kOk);
  EXPECT_EQ(decoded, payload);
}

TEST(ServeFramingTest, CleanCloseBetweenFramesIsEof) {
  FragmentingStream reader("", 16);
  std::string decoded;
  EXPECT_EQ(ReadFrame(reader, &decoded), FrameReadStatus::kEof);
}

TEST(ServeFramingTest, CloseInsidePrefixIsTruncated) {
  FragmentingStream reader(std::string("\x08\x00", 2), 16);
  std::string decoded;
  EXPECT_EQ(ReadFrame(reader, &decoded), FrameReadStatus::kTruncated);
}

TEST(ServeFramingTest, CloseInsidePayloadIsTruncated) {
  const std::string frame = Framed("abcdefgh");
  FragmentingStream reader(frame.substr(0, frame.size() - 3), 2);
  std::string decoded;
  EXPECT_EQ(ReadFrame(reader, &decoded), FrameReadStatus::kTruncated);
  EXPECT_TRUE(decoded.empty());
}

TEST(ServeFramingTest, OversizedPrefixRejectedBeforeBuffering) {
  // Prefix claims ~4 GiB; the frame must be rejected without the reader
  // attempting to consume (or allocate) the payload.
  const std::string frame = Framed("only a little payload");
  std::string huge_prefix = frame;
  huge_prefix[3] = static_cast<char>(0xff);
  FragmentingStream reader(huge_prefix, 64);
  std::string decoded;
  EXPECT_EQ(ReadFrame(reader, &decoded, /*max_payload=*/1 << 20),
            FrameReadStatus::kOversized);
  EXPECT_TRUE(decoded.empty());
}

TEST(ServeFramingTest, MaxPayloadBoundaryIsExact) {
  const std::string payload(64, 'p');
  const std::string frame = Framed(payload);
  {
    FragmentingStream reader(frame, 64);
    std::string decoded;
    EXPECT_EQ(ReadFrame(reader, &decoded, /*max_payload=*/64),
              FrameReadStatus::kOk);
  }
  {
    FragmentingStream reader(frame, 64);
    std::string decoded;
    EXPECT_EQ(ReadFrame(reader, &decoded, /*max_payload=*/63),
              FrameReadStatus::kOversized);
  }
}

TEST(ServeFramingTest, BackToBackFramesStaySynced) {
  FragmentingStream writer("", 3);
  ASSERT_TRUE(WriteFrame(writer, "first"));
  ASSERT_TRUE(WriteFrame(writer, ""));
  ASSERT_TRUE(WriteFrame(writer, "third"));
  FragmentingStream reader(writer.output(), 2, /*eintr_period=*/4);
  std::string decoded;
  ASSERT_EQ(ReadFrame(reader, &decoded), FrameReadStatus::kOk);
  EXPECT_EQ(decoded, "first");
  ASSERT_EQ(ReadFrame(reader, &decoded), FrameReadStatus::kOk);
  EXPECT_EQ(decoded, "");
  ASSERT_EQ(ReadFrame(reader, &decoded), FrameReadStatus::kOk);
  EXPECT_EQ(decoded, "third");
  EXPECT_EQ(ReadFrame(reader, &decoded), FrameReadStatus::kEof);
}

// A stream whose writes return 0 (no progress, no error) -- first
// `zeros` times, then behave; or forever when zeros < 0.
class ZeroWriteStream : public ByteStream {
 public:
  explicit ZeroWriteStream(int zeros) : zeros_(zeros) {}

  ssize_t ReadSome(void*, size_t) override { return 0; }

  ssize_t WriteSome(const void* buffer, size_t length) override {
    ++write_calls_;
    if (zeros_ < 0) return 0;
    if (zeros_ > 0) {
      --zeros_;
      return 0;
    }
    output_.append(static_cast<const char*>(buffer), length);
    return static_cast<ssize_t>(length);
  }

  const std::string& output() const { return output_; }
  int write_calls() const { return write_calls_; }

 private:
  int zeros_;
  std::string output_;
  int write_calls_ = 0;
};

TEST(ServeFramingTest, StuckAtZeroWriterFailsBoundedInsteadOfSpinning) {
  ZeroWriteStream stuck(/*zeros=*/-1);
  errno = 0;
  EXPECT_FALSE(WriteFrame(stuck, "payload"));
  EXPECT_EQ(errno, EIO);
  // The loop gave up after a small bounded number of attempts -- the
  // regression this guards against is an infinite 0-return spin.
  EXPECT_LE(stuck.write_calls(), 64);
}

TEST(ServeFramingTest, TransientZeroWritesStillComplete) {
  ZeroWriteStream sluggish(/*zeros=*/5);
  ASSERT_TRUE(WriteFrame(sluggish, "payload"));
  EXPECT_EQ(sluggish.output(), Framed("payload"));
}

// A stream that delivers `deliver` bytes of its input, then fails with
// EAGAIN forever -- what a socket with an armed SO_RCVTIMEO looks like
// when the peer stalls.
class StallingStream : public ByteStream {
 public:
  StallingStream(std::string input, size_t deliver)
      : input_(std::move(input)), deliver_(deliver) {}

  ssize_t ReadSome(void* buffer, size_t length) override {
    if (pos_ >= deliver_) {
      errno = EAGAIN;
      return -1;
    }
    const size_t n = std::min(length, deliver_ - pos_);
    std::memcpy(buffer, input_.data() + pos_, n);
    pos_ += n;
    return static_cast<ssize_t>(n);
  }

  ssize_t WriteSome(const void*, size_t) override {
    errno = EAGAIN;
    return -1;
  }

 private:
  std::string input_;
  size_t deliver_;
  size_t pos_ = 0;
};

// Counts OnFrameStart firings (the idle -> mid-frame transition hook).
class CountingWatcher : public FrameWatcher {
 public:
  void OnFrameStart() override { ++frame_starts_; }
  int frame_starts() const { return frame_starts_; }

 private:
  int frame_starts_ = 0;
};

TEST(ServeFramingTest, TimeoutBeforeAnyByteIsIdle) {
  StallingStream idle(Framed("payload"), /*deliver=*/0);
  CountingWatcher watcher;
  std::string decoded;
  bool frame_started = true;
  EXPECT_EQ(ReadFrame(idle, &decoded, kMaxFramePayloadBytes, &watcher,
                      &frame_started),
            FrameReadStatus::kTimeout);
  EXPECT_FALSE(frame_started);
  EXPECT_EQ(watcher.frame_starts(), 0);
}

TEST(ServeFramingTest, TimeoutInsidePrefixIsMidFrame) {
  StallingStream stalled(Framed("payload"), /*deliver=*/2);
  CountingWatcher watcher;
  std::string decoded;
  bool frame_started = false;
  EXPECT_EQ(ReadFrame(stalled, &decoded, kMaxFramePayloadBytes, &watcher,
                      &frame_started),
            FrameReadStatus::kTimeout);
  EXPECT_TRUE(frame_started);
  EXPECT_EQ(watcher.frame_starts(), 1);
}

TEST(ServeFramingTest, TimeoutInsidePayloadIsMidFrame) {
  StallingStream stalled(Framed("payload"), /*deliver=*/6);
  std::string decoded;
  bool frame_started = false;
  EXPECT_EQ(ReadFrame(stalled, &decoded, kMaxFramePayloadBytes, nullptr,
                      &frame_started),
            FrameReadStatus::kTimeout);
  EXPECT_TRUE(frame_started);
  EXPECT_TRUE(decoded.empty());
}

TEST(ServeFramingTest, WriteTimeoutSurfacesAsEagain) {
  StallingStream stalled("", 0);
  errno = 0;
  EXPECT_FALSE(WriteFrame(stalled, "payload"));
  EXPECT_EQ(errno, EAGAIN);
}

TEST(ServeFramingTest, WatcherFiresOncePerFrame) {
  FragmentingStream writer("", 3);
  ASSERT_TRUE(WriteFrame(writer, "first"));
  ASSERT_TRUE(WriteFrame(writer, "second"));
  FragmentingStream reader(writer.output(), 1);
  CountingWatcher watcher;
  std::string decoded;
  ASSERT_EQ(ReadFrame(reader, &decoded, kMaxFramePayloadBytes, &watcher),
            FrameReadStatus::kOk);
  EXPECT_EQ(watcher.frame_starts(), 1);
  ASSERT_EQ(ReadFrame(reader, &decoded, kMaxFramePayloadBytes, &watcher),
            FrameReadStatus::kOk);
  EXPECT_EQ(watcher.frame_starts(), 2);
}

TEST(ServeFramingTest, FdStreamRoundTripsOverAPipe) {
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  FdStream writer(fds[1]);
  FdStream reader(fds[0]);
  const std::string payload = "pipe payload";
  ASSERT_TRUE(WriteFrame(writer, payload));
  ::close(fds[1]);
  std::string decoded;
  EXPECT_EQ(ReadFrame(reader, &decoded), FrameReadStatus::kOk);
  EXPECT_EQ(decoded, payload);
  EXPECT_EQ(ReadFrame(reader, &decoded), FrameReadStatus::kEof);
  ::close(fds[0]);
}

}  // namespace
}  // namespace serve
}  // namespace toprr
