#include "geom/lp.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace toprr {
namespace {

TEST(LpTest, SimpleBox2D) {
  // max x + y s.t. 0 <= x,y <= 1 -> (1, 1).
  const auto constraints = BoxHalfspaces(Vec{0.0, 0.0}, Vec{1.0, 1.0});
  const LpResult r = SolveLp(Vec{1.0, 1.0}, constraints);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r.objective, 2.0, 1e-8);
  EXPECT_NEAR(r.x[0], 1.0, 1e-8);
  EXPECT_NEAR(r.x[1], 1.0, 1e-8);
}

TEST(LpTest, NegativeDirection) {
  // min x (= max -x) over the box -> x = -3.
  const auto constraints = BoxHalfspaces(Vec{-3.0, 0.0}, Vec{5.0, 1.0});
  const LpResult r = SolveLp(Vec{-1.0, 0.0}, constraints);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r.x[0], -3.0, 1e-8);
}

TEST(LpTest, TriangleVertex) {
  // max x + 2y s.t. x >= 0, y >= 0, x + y <= 1 -> (0, 1).
  std::vector<Halfspace> hs = {
      Halfspace(Vec{-1.0, 0.0}, 0.0),
      Halfspace(Vec{0.0, -1.0}, 0.0),
      Halfspace(Vec{1.0, 1.0}, 1.0),
  };
  const LpResult r = SolveLp(Vec{1.0, 2.0}, hs);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r.objective, 2.0, 1e-8);
  EXPECT_NEAR(r.x[0], 0.0, 1e-8);
  EXPECT_NEAR(r.x[1], 1.0, 1e-8);
}

TEST(LpTest, Infeasible) {
  std::vector<Halfspace> hs = {
      Halfspace(Vec{1.0}, 0.0),   // x <= 0
      Halfspace(Vec{-1.0}, -1.0),  // x >= 1
  };
  const LpResult r = SolveLp(Vec{1.0}, hs);
  EXPECT_EQ(r.status, LpStatus::kInfeasible);
}

TEST(LpTest, Unbounded) {
  std::vector<Halfspace> hs = {Halfspace(Vec{-1.0, 0.0}, 0.0)};  // x >= 0
  const LpResult r = SolveLp(Vec{1.0, 0.0}, hs);
  EXPECT_EQ(r.status, LpStatus::kUnbounded);
}

TEST(LpTest, NegativeRhsNeedsPhase1) {
  // x >= 2 (offset -2 after negation), x <= 5; max -x -> x = 2.
  std::vector<Halfspace> hs = {
      Halfspace(Vec{-1.0}, -2.0),
      Halfspace(Vec{1.0}, 5.0),
  };
  const LpResult r = SolveLp(Vec{-1.0}, hs);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r.x[0], 2.0, 1e-8);
}

TEST(LpTest, DegenerateEqualityPair) {
  // x <= 1 and x >= 1 force x = 1.
  std::vector<Halfspace> hs = {
      Halfspace(Vec{1.0, 0.0}, 1.0),
      Halfspace(Vec{-1.0, 0.0}, -1.0),
      Halfspace(Vec{0.0, 1.0}, 4.0),
      Halfspace(Vec{0.0, -1.0}, 0.0),
  };
  const LpResult r = SolveLp(Vec{1.0, 1.0}, hs);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r.x[0], 1.0, 1e-8);
  EXPECT_NEAR(r.x[1], 4.0, 1e-8);
}

TEST(ChebyshevTest, UnitSquareCenter) {
  const auto hs = BoxHalfspaces(Vec{0.0, 0.0}, Vec{1.0, 1.0});
  double radius = 0.0;
  const LpResult r = ChebyshevCenter(hs, 2, &radius);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(radius, 0.5, 1e-8);
  EXPECT_NEAR(r.x[0], 0.5, 1e-6);
  EXPECT_NEAR(r.x[1], 0.5, 1e-6);
}

TEST(ChebyshevTest, TriangleInteriorPoint) {
  std::vector<Halfspace> hs = {
      Halfspace(Vec{-1.0, 0.0}, 0.0),
      Halfspace(Vec{0.0, -1.0}, 0.0),
      Halfspace(Vec{1.0, 1.0}, 1.0),
  };
  double radius = 0.0;
  const LpResult r = ChebyshevCenter(hs, 2, &radius);
  ASSERT_TRUE(r.ok());
  EXPECT_GT(radius, 0.1);
  for (const Halfspace& h : hs) {
    EXPECT_LT(h.Violation(r.x), -0.1);  // strictly inside
  }
}

TEST(ChebyshevTest, InfeasibleSystem) {
  std::vector<Halfspace> hs = {
      Halfspace(Vec{1.0}, 0.0),
      Halfspace(Vec{-1.0}, -1.0),
  };
  const LpResult r = ChebyshevCenter(hs, 1);
  EXPECT_FALSE(r.ok());
}

TEST(IsFeasibleTest, Basic) {
  EXPECT_TRUE(IsFeasible(BoxHalfspaces(Vec{0.0}, Vec{1.0}), 1));
  EXPECT_FALSE(IsFeasible(
      {Halfspace(Vec{1.0}, -1.0), Halfspace(Vec{-1.0}, -1.0)}, 1));
}

TEST(IrredundantTest, RemovesLooseBound) {
  std::vector<Halfspace> hs = {
      Halfspace(Vec{1.0, 0.0}, 1.0),   // x <= 1 (tight)
      Halfspace(Vec{1.0, 0.0}, 5.0),   // x <= 5 (redundant)
      Halfspace(Vec{-1.0, 0.0}, 0.0),  // x >= 0
      Halfspace(Vec{0.0, 1.0}, 1.0),   // y <= 1
      Halfspace(Vec{0.0, -1.0}, 0.0),  // y >= 0
  };
  const auto kept = IrredundantHalfspaces(hs, 2);
  ASSERT_EQ(kept.size(), 4u);
  for (size_t idx : kept) EXPECT_NE(idx, 1u);
}

TEST(LpTest, RandomizedAgainstVertexEnumeration2D) {
  // On random bounded 2-D systems, the LP optimum must match the best
  // box-corner/constraint intersection found by brute force sampling.
  Rng rng(7);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<Halfspace> hs = BoxHalfspaces(Vec{0.0, 0.0}, Vec{1.0, 1.0});
    for (int extra = 0; extra < 4; ++extra) {
      Vec n{rng.Uniform(-1.0, 1.0), rng.Uniform(-1.0, 1.0)};
      if (n.Norm() < 0.1) continue;
      hs.emplace_back(n, rng.Uniform(0.3, 1.5));
    }
    const Vec c{rng.Uniform(-1.0, 1.0), rng.Uniform(-1.0, 1.0)};
    const LpResult r = SolveLp(c, hs);
    if (!r.ok()) continue;  // possibly infeasible draw
    // Dense grid check: no feasible point may beat the LP optimum.
    double best_grid = -1e9;
    for (int i = 0; i <= 60; ++i) {
      for (int j = 0; j <= 60; ++j) {
        const Vec p{i / 60.0, j / 60.0};
        bool feasible = true;
        for (const Halfspace& h : hs) {
          if (!h.Contains(p, 1e-12)) {
            feasible = false;
            break;
          }
        }
        if (feasible) best_grid = std::max(best_grid, Dot(c, p));
      }
    }
    EXPECT_GE(r.objective + 1e-6, best_grid) << "trial " << trial;
  }
}

}  // namespace
}  // namespace toprr
