#include "topk/skyband.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "data/generator.h"
#include "data/snapshot.h"
#include "pref/pref_space.h"
#include "topk/topk.h"

namespace toprr {
namespace {

// O(n^2) reference k-skyband.
std::vector<int> BruteForceKSkyband(const Dataset& ds, int k) {
  std::vector<int> out;
  for (size_t i = 0; i < ds.size(); ++i) {
    int dominators = 0;
    for (size_t j = 0; j < ds.size(); ++j) {
      if (i != j && Dominates(ds, static_cast<int>(j), static_cast<int>(i))) {
        ++dominators;
      }
    }
    if (dominators < k) out.push_back(static_cast<int>(i));
  }
  return out;
}

TEST(DominatesTest, Basics) {
  const Dataset ds = Dataset::FromRows(
      {Vec{0.5, 0.5}, Vec{0.6, 0.5}, Vec{0.5, 0.5}, Vec{0.6, 0.4}});
  EXPECT_TRUE(Dominates(ds, 1, 0));   // strictly better in x, equal y
  EXPECT_FALSE(Dominates(ds, 0, 1));
  EXPECT_FALSE(Dominates(ds, 0, 2));  // equal points do not dominate
  EXPECT_FALSE(Dominates(ds, 3, 0));  // incomparable
  EXPECT_FALSE(Dominates(ds, 0, 3));
}

TEST(SkybandTest, MatchesBruteForce) {
  for (Distribution dist : {Distribution::kIndependent,
                            Distribution::kCorrelated,
                            Distribution::kAnticorrelated}) {
    const Dataset ds = GenerateSynthetic(400, 3, dist, 10);
    for (int k : {1, 2, 5}) {
      EXPECT_EQ(SortBasedKSkyband(ds, k), BruteForceKSkyband(ds, k))
          << DistributionName(dist) << " k=" << k;
    }
  }
}

TEST(SkybandTest, SkybandGrowsWithK) {
  const Dataset ds = GenerateSynthetic(1000, 4,
                                       Distribution::kIndependent, 11);
  size_t prev = 0;
  for (int k : {1, 2, 4, 8}) {
    const size_t size = SortBasedKSkyband(ds, k).size();
    EXPECT_GE(size, prev);
    prev = size;
  }
}

TEST(SkybandTest, ContainsEveryTopKResult) {
  // The k-skyband must contain the top-k for any weight vector.
  const Dataset ds = GenerateSynthetic(800, 3,
                                       Distribution::kIndependent, 12);
  const int k = 5;
  const std::vector<int> skyband = SortBasedKSkyband(ds, k);
  Rng rng(13);
  for (int trial = 0; trial < 30; ++trial) {
    Vec w(3);
    double sum = 0.0;
    for (size_t j = 0; j < 3; ++j) {
      w[j] = rng.Uniform() + 1e-3;
      sum += w[j];
    }
    w /= sum;
    const TopkResult topk = ComputeTopK(ds, w, k);
    for (const ScoredOption& e : topk.entries) {
      EXPECT_TRUE(std::binary_search(skyband.begin(), skyband.end(), e.id))
          << "top-k member missing from skyband";
    }
  }
}

TEST(SkybandTest, DuplicatePointsStayUpToK) {
  // Identical maximal points do not dominate each other, so all four stay
  // in the skyline; the dominated point is excluded.
  Dataset ds;
  for (int i = 0; i < 4; ++i) ds.Append(Vec{0.9, 0.9});
  ds.Append(Vec{0.1, 0.1});
  const std::vector<int> sb1 = SortBasedKSkyband(ds, 1);
  EXPECT_EQ(sb1, (std::vector<int>{0, 1, 2, 3}));
  // With k = 5 the dominated point returns.
  EXPECT_EQ(SortBasedKSkyband(ds, 5).size(), 5u);
}

TEST(SkybandTest, AllPointsWhenKIsLarge) {
  const Dataset ds = GenerateSynthetic(50, 2,
                                       Distribution::kAnticorrelated, 14);
  EXPECT_EQ(SortBasedKSkyband(ds, 50).size(), 50u);
}

// ---- Incremental maintenance (data/snapshot.h deltas) -----------------

TEST(SkybandTest, PoolVariantMatchesFullScan) {
  const Dataset ds = GenerateSynthetic(400, 3,
                                       Distribution::kAnticorrelated, 20);
  const SnapshotPtr snap = DatasetSnapshot::FromDataset(ds);
  for (int k : {1, 3, 10}) {
    const KSkybandState state =
        SortBasedKSkybandPool(snap->View(), snap->live_ids(), k);
    EXPECT_EQ(state.ids, SortBasedKSkyband(ds, k)) << "k=" << k;
    ASSERT_EQ(state.counts.size(), state.ids.size());
    for (const int count : state.counts) EXPECT_LT(count, k);
    EXPECT_TRUE(std::is_sorted(state.ids.begin(), state.ids.end()));
  }
}

TEST(SkybandTest, IncrementalMatchesRebuildAcrossDeltaMatrix) {
  // Insert-only, non-member-delete-only, and mixed deltas, across dims
  // and ks: the incremental state must be *bit-identical* (ids and
  // counts) to a from-scratch rebuild over the new snapshot's live rows.
  Rng rng(21);
  for (const size_t d : {size_t{2}, size_t{4}}) {
    for (const int k : {1, 3, 8}) {
      for (const int pattern : {0, 1, 2}) {  // insert / delete / mixed
        SCOPED_TRACE("d=" + std::to_string(d) + " k=" + std::to_string(k) +
                     " pattern=" + std::to_string(pattern));
        const Dataset ds = GenerateSynthetic(
            300, d, Distribution::kIndependent,
            static_cast<uint64_t>(100 + 10 * d + k + pattern));
        MutableCatalog catalog(ds);
        const SnapshotPtr v1 = catalog.Current();
        KSkybandState state =
            SortBasedKSkybandPool(v1->View(), v1->live_ids(), k);

        if (pattern != 1) {  // inserts
          for (int i = 0; i < 15; ++i) {
            Vec row(d);
            for (size_t j = 0; j < d; ++j) row[j] = rng.Uniform();
            catalog.StageInsert(row);
          }
        }
        if (pattern != 0) {  // non-member deletes
          int staged = 0;
          for (int id = 0; id < 300 && staged < 10; ++id) {
            if (!std::binary_search(state.ids.begin(), state.ids.end(),
                                    id)) {
              catalog.StageDelete(id);
              ++staged;
            }
          }
          ASSERT_EQ(staged, 10);
        }
        const SnapshotPtr v2 = catalog.Publish();
        ASSERT_FALSE(
            KSkybandDeleteHitsMember(v2->delta().deleted, state.ids));

        KSkybandApplyInserts(v2->View(), k, v2->delta().inserted, &state);
        const KSkybandState rebuilt =
            SortBasedKSkybandPool(v2->View(), v2->live_ids(), k);
        EXPECT_EQ(state.ids, rebuilt.ids);
        EXPECT_EQ(state.counts, rebuilt.counts);
      }
    }
  }
}

TEST(SkybandTest, ChainedIncrementalPublishesStayExact) {
  // Several publishes applied one after the other onto the same carried
  // state -- the induction step of the correctness argument.
  const Dataset ds = GenerateSynthetic(250, 3, Distribution::kCorrelated,
                                       22);
  MutableCatalog catalog(ds);
  const int k = 5;
  SnapshotPtr snap = catalog.Current();
  KSkybandState state =
      SortBasedKSkybandPool(snap->View(), snap->live_ids(), k);
  Rng rng(23);
  for (int round = 0; round < 5; ++round) {
    SCOPED_TRACE(round);
    for (int i = 0; i < 6; ++i) {
      Vec row(3);
      for (size_t j = 0; j < 3; ++j) row[j] = rng.Uniform();
      catalog.StageInsert(row);
    }
    snap = catalog.Publish();
    KSkybandApplyInserts(snap->View(), k, snap->delta().inserted, &state);
    const KSkybandState rebuilt =
        SortBasedKSkybandPool(snap->View(), snap->live_ids(), k);
    ASSERT_EQ(state.ids, rebuilt.ids);
    ASSERT_EQ(state.counts, rebuilt.counts);
  }
}

TEST(SkybandTest, DeleteHitsMemberDetection) {
  const std::vector<int> members = {2, 5, 9};
  EXPECT_FALSE(KSkybandDeleteHitsMember({}, members));
  EXPECT_FALSE(KSkybandDeleteHitsMember({0, 3, 10}, members));
  EXPECT_TRUE(KSkybandDeleteHitsMember({3, 5}, members));
}

}  // namespace
}  // namespace toprr
