#include "topk/skyband.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "data/generator.h"
#include "pref/pref_space.h"
#include "topk/topk.h"

namespace toprr {
namespace {

// O(n^2) reference k-skyband.
std::vector<int> BruteForceKSkyband(const Dataset& ds, int k) {
  std::vector<int> out;
  for (size_t i = 0; i < ds.size(); ++i) {
    int dominators = 0;
    for (size_t j = 0; j < ds.size(); ++j) {
      if (i != j && Dominates(ds, static_cast<int>(j), static_cast<int>(i))) {
        ++dominators;
      }
    }
    if (dominators < k) out.push_back(static_cast<int>(i));
  }
  return out;
}

TEST(DominatesTest, Basics) {
  const Dataset ds = Dataset::FromRows(
      {Vec{0.5, 0.5}, Vec{0.6, 0.5}, Vec{0.5, 0.5}, Vec{0.6, 0.4}});
  EXPECT_TRUE(Dominates(ds, 1, 0));   // strictly better in x, equal y
  EXPECT_FALSE(Dominates(ds, 0, 1));
  EXPECT_FALSE(Dominates(ds, 0, 2));  // equal points do not dominate
  EXPECT_FALSE(Dominates(ds, 3, 0));  // incomparable
  EXPECT_FALSE(Dominates(ds, 0, 3));
}

TEST(SkybandTest, MatchesBruteForce) {
  for (Distribution dist : {Distribution::kIndependent,
                            Distribution::kCorrelated,
                            Distribution::kAnticorrelated}) {
    const Dataset ds = GenerateSynthetic(400, 3, dist, 10);
    for (int k : {1, 2, 5}) {
      EXPECT_EQ(SortBasedKSkyband(ds, k), BruteForceKSkyband(ds, k))
          << DistributionName(dist) << " k=" << k;
    }
  }
}

TEST(SkybandTest, SkybandGrowsWithK) {
  const Dataset ds = GenerateSynthetic(1000, 4,
                                       Distribution::kIndependent, 11);
  size_t prev = 0;
  for (int k : {1, 2, 4, 8}) {
    const size_t size = SortBasedKSkyband(ds, k).size();
    EXPECT_GE(size, prev);
    prev = size;
  }
}

TEST(SkybandTest, ContainsEveryTopKResult) {
  // The k-skyband must contain the top-k for any weight vector.
  const Dataset ds = GenerateSynthetic(800, 3,
                                       Distribution::kIndependent, 12);
  const int k = 5;
  const std::vector<int> skyband = SortBasedKSkyband(ds, k);
  Rng rng(13);
  for (int trial = 0; trial < 30; ++trial) {
    Vec w(3);
    double sum = 0.0;
    for (size_t j = 0; j < 3; ++j) {
      w[j] = rng.Uniform() + 1e-3;
      sum += w[j];
    }
    w /= sum;
    const TopkResult topk = ComputeTopK(ds, w, k);
    for (const ScoredOption& e : topk.entries) {
      EXPECT_TRUE(std::binary_search(skyband.begin(), skyband.end(), e.id))
          << "top-k member missing from skyband";
    }
  }
}

TEST(SkybandTest, DuplicatePointsStayUpToK) {
  // Identical maximal points do not dominate each other, so all four stay
  // in the skyline; the dominated point is excluded.
  Dataset ds;
  for (int i = 0; i < 4; ++i) ds.Append(Vec{0.9, 0.9});
  ds.Append(Vec{0.1, 0.1});
  const std::vector<int> sb1 = SortBasedKSkyband(ds, 1);
  EXPECT_EQ(sb1, (std::vector<int>{0, 1, 2, 3}));
  // With k = 5 the dominated point returns.
  EXPECT_EQ(SortBasedKSkyband(ds, 5).size(), 5u);
}

TEST(SkybandTest, AllPointsWhenKIsLarge) {
  const Dataset ds = GenerateSynthetic(50, 2,
                                       Distribution::kAnticorrelated, 14);
  EXPECT_EQ(SortBasedKSkyband(ds, 50).size(), 50u);
}

}  // namespace
}  // namespace toprr
