#include "geom/vec.h"

#include <gtest/gtest.h>

namespace toprr {
namespace {

TEST(VecTest, ConstructionAndAccess) {
  Vec v(3, 1.5);
  EXPECT_EQ(v.dim(), 3u);
  EXPECT_DOUBLE_EQ(v[0], 1.5);
  EXPECT_DOUBLE_EQ(v[2], 1.5);
  v[1] = -2.0;
  EXPECT_DOUBLE_EQ(v[1], -2.0);
}

TEST(VecTest, InitializerList) {
  Vec v{1.0, 2.0, 3.0};
  EXPECT_EQ(v.dim(), 3u);
  EXPECT_DOUBLE_EQ(v[1], 2.0);
}

TEST(VecTest, Arithmetic) {
  Vec a{1.0, 2.0};
  Vec b{3.0, -1.0};
  Vec sum = a + b;
  EXPECT_DOUBLE_EQ(sum[0], 4.0);
  EXPECT_DOUBLE_EQ(sum[1], 1.0);
  Vec diff = a - b;
  EXPECT_DOUBLE_EQ(diff[0], -2.0);
  EXPECT_DOUBLE_EQ(diff[1], 3.0);
  Vec scaled = 2.0 * a;
  EXPECT_DOUBLE_EQ(scaled[0], 2.0);
  EXPECT_DOUBLE_EQ(scaled[1], 4.0);
  Vec divided = b / 2.0;
  EXPECT_DOUBLE_EQ(divided[0], 1.5);
}

TEST(VecTest, CompoundAssignment) {
  Vec a{1.0, 1.0};
  a += Vec{2.0, 3.0};
  EXPECT_DOUBLE_EQ(a[0], 3.0);
  a -= Vec{1.0, 1.0};
  EXPECT_DOUBLE_EQ(a[1], 3.0);
  a *= 0.5;
  EXPECT_DOUBLE_EQ(a[0], 1.0);
}

TEST(VecTest, DotProduct) {
  EXPECT_DOUBLE_EQ(Dot(Vec{1.0, 2.0, 3.0}, Vec{4.0, 5.0, 6.0}), 32.0);
  EXPECT_DOUBLE_EQ(Dot(Vec{1.0, 0.0}, Vec{0.0, 1.0}), 0.0);
}

TEST(VecTest, Norms) {
  Vec v{3.0, 4.0};
  EXPECT_DOUBLE_EQ(v.Norm(), 5.0);
  EXPECT_DOUBLE_EQ(v.SquaredNorm(), 25.0);
  EXPECT_DOUBLE_EQ(v.Sum(), 7.0);
  EXPECT_DOUBLE_EQ(Vec({-3.0, 2.0}).MaxAbs(), 3.0);
}

TEST(VecTest, Distances) {
  Vec a{0.0, 0.0};
  Vec b{3.0, 4.0};
  EXPECT_DOUBLE_EQ(Distance(a, b), 5.0);
  EXPECT_DOUBLE_EQ(SquaredDistance(a, b), 25.0);
}

TEST(VecTest, ApproxEqual) {
  EXPECT_TRUE(ApproxEqual(Vec{1.0, 2.0}, Vec{1.0 + 1e-10, 2.0}, 1e-9));
  EXPECT_FALSE(ApproxEqual(Vec{1.0, 2.0}, Vec{1.1, 2.0}, 1e-9));
  EXPECT_FALSE(ApproxEqual(Vec{1.0}, Vec{1.0, 2.0}, 1e-9));
}

TEST(VecTest, Lerp) {
  Vec a{0.0, 10.0};
  Vec b{10.0, 0.0};
  Vec mid = Lerp(a, b, 0.5);
  EXPECT_DOUBLE_EQ(mid[0], 5.0);
  EXPECT_DOUBLE_EQ(mid[1], 5.0);
  EXPECT_TRUE(ApproxEqual(Lerp(a, b, 0.0), a, 1e-15));
  EXPECT_TRUE(ApproxEqual(Lerp(a, b, 1.0), b, 1e-15));
}

TEST(VecTest, ToString) {
  EXPECT_EQ(Vec({1.0, 2.5}).ToString(), "(1, 2.5)");
}

TEST(VecTest, EqualityOperator) {
  EXPECT_TRUE(Vec({1.0, 2.0}) == Vec({1.0, 2.0}));
  EXPECT_FALSE(Vec({1.0, 2.0}) == Vec({1.0, 2.1}));
}

}  // namespace
}  // namespace toprr
