#include "topk/topk.h"

#include <gtest/gtest.h>

#include "data/generator.h"
#include "pref/pref_space.h"

namespace toprr {
namespace {

// The running example of paper Figure 1(a).
Dataset PaperFigure1Dataset() {
  return Dataset::FromRows({
      Vec{0.9, 0.4},  // p1 (id 0)
      Vec{0.7, 0.9},  // p2 (id 1)
      Vec{0.6, 0.2},  // p3 (id 2)
      Vec{0.3, 0.8},  // p4 (id 3)
      Vec{0.2, 0.3},  // p5 (id 4)
      Vec{0.1, 0.1},  // p6 (id 5)
  });
}

TEST(TopkTest, PaperRunningExample) {
  const Dataset ds = PaperFigure1Dataset();
  // w[0] = 0.75 (speed-leaning, right of the p1/p2 crossover at 5/7):
  // Figure 1(d) has the top-3 set {p1, p2, p3} with p1 on top.
  const TopkResult r = ComputeTopK(ds, Vec{0.75, 0.25}, 3);
  ASSERT_EQ(r.entries.size(), 3u);
  EXPECT_EQ(r.entries[0].id, 0);  // p1
  EXPECT_EQ(r.entries[1].id, 1);  // p2
  EXPECT_EQ(r.entries[2].id, 2);  // p3
  EXPECT_EQ(r.KthId(), 2);
  EXPECT_NEAR(r.KthScore(), 0.6 * 0.75 + 0.2 * 0.25, 1e-12);
}

TEST(TopkTest, BatterySideOfExample) {
  const Dataset ds = PaperFigure1Dataset();
  // w[0] = 0.2: battery matters; p2 and p4 lead.
  const TopkResult r = ComputeTopK(ds, Vec{0.2, 0.8}, 3);
  EXPECT_EQ(r.entries[0].id, 1);  // p2
  EXPECT_EQ(r.entries[1].id, 3);  // p4
  EXPECT_EQ(r.entries[2].id, 0);  // p1
}

TEST(TopkTest, TieBrokenByIdAscending) {
  const Dataset ds = Dataset::FromRows(
      {Vec{0.5, 0.5}, Vec{0.5, 0.5}, Vec{0.4, 0.4}});
  const TopkResult r = ComputeTopK(ds, Vec{0.5, 0.5}, 2);
  EXPECT_EQ(r.entries[0].id, 0);
  EXPECT_EQ(r.entries[1].id, 1);
}

TEST(TopkTest, IdSetSorted) {
  const Dataset ds = PaperFigure1Dataset();
  const TopkResult r = ComputeTopK(ds, Vec{0.2, 0.8}, 3);
  EXPECT_EQ(r.IdSet(), (std::vector<int>{0, 1, 3}));
}

TEST(TopkReducedTest, MatchesFullWeightEvaluation) {
  const Dataset ds = GenerateSynthetic(500, 4,
                                       Distribution::kIndependent, 6);
  std::vector<int> all_ids(ds.size());
  for (size_t i = 0; i < ds.size(); ++i) all_ids[i] = static_cast<int>(i);
  Rng rng(9);
  for (int trial = 0; trial < 10; ++trial) {
    Vec x(3);
    double sum = 0.0;
    for (size_t j = 0; j < 3; ++j) {
      x[j] = rng.Uniform(0.0, 0.33);
      sum += x[j];
    }
    ASSERT_LE(sum, 1.0);
    const TopkResult reduced = ComputeTopKReduced(ds, all_ids, x, 7);
    const TopkResult full = ComputeTopK(ds, FullWeight(x), 7);
    ASSERT_EQ(reduced.entries.size(), full.entries.size());
    for (size_t i = 0; i < full.entries.size(); ++i) {
      EXPECT_EQ(reduced.entries[i].id, full.entries[i].id);
      EXPECT_NEAR(reduced.entries[i].score, full.entries[i].score, 1e-12);
    }
  }
}

TEST(TopkReducedTest, SubsetRestriction) {
  const Dataset ds = PaperFigure1Dataset();
  const std::vector<int> subset = {2, 3, 4};  // p3, p4, p5
  const TopkResult r = ComputeTopKReduced(ds, subset, Vec{0.5}, 2);
  EXPECT_EQ(r.entries[0].id, 3);  // p4: 0.55
  EXPECT_EQ(r.entries[1].id, 2);  // p3: 0.40
}

TEST(TopkTest, KLargerThanDatasetReturnsAll) {
  const Dataset ds = Dataset::FromRows({Vec{0.1, 0.1}, Vec{0.9, 0.9}});
  const TopkResult r = ComputeTopK(ds, Vec{0.5, 0.5}, 10);
  EXPECT_EQ(r.entries.size(), 2u);
}

TEST(RankOfOptionTest, Basics) {
  const Dataset ds = PaperFigure1Dataset();
  std::vector<int> all_ids(ds.size());
  for (size_t i = 0; i < ds.size(); ++i) all_ids[i] = static_cast<int>(i);
  const Vec x{0.75};  // right of the p1/p2 crossover at 5/7
  EXPECT_EQ(RankOfOption(ds, all_ids, x, 0), 1);  // p1 best at 0.75
  EXPECT_EQ(RankOfOption(ds, all_ids, x, 5), 6);  // p6 always last
  EXPECT_EQ(RankOfOption(ds, all_ids, Vec{0.7}, 0), 2);  // p2 leads at 0.7
}

}  // namespace
}  // namespace toprr
