// DurableCatalog behavior tests: PredictPublish/Publish id agreement,
// append-then-apply rollback on WAL failure, counter accounting across
// rotations, and a real kill -9: a forked child churns durable
// publishes, reports each ack over a pipe, and is SIGKILLed mid-churn;
// the parent reopens the data_dir and proves every acked publish
// survived with a bit-identical snapshot id and nothing was applied
// twice.
#include "data/recovery.h"

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <map>
#include <random>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "data/dataset.h"
#include "data/snapshot.h"
#include "data/wal.h"

// fork() without exec() is unsupported under ThreadSanitizer; the crash
// test is covered by the ASan/UBSan and plain jobs instead.
#if defined(__SANITIZE_THREAD__)
#define TOPRR_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define TOPRR_TSAN 1
#endif
#endif

namespace toprr {
namespace {

std::string MakeTempDir() {
  char tmpl[] = "/tmp/toprr_durable_test_XXXXXX";
  const char* dir = ::mkdtemp(tmpl);
  EXPECT_NE(dir, nullptr);
  return dir;
}

Dataset MakeBootstrap(size_t n, size_t d) {
  Dataset data(n, d);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < d; ++j) {
      data.At(i, j) = 0.015 * static_cast<double>(i * d + j + 1);
    }
  }
  return data;
}

TEST(PredictPublishTest, MatchesPublishAcrossRandomDeltas) {
  std::mt19937 rng(20260809);
  MutableCatalog catalog(MakeBootstrap(40, 3));
  for (int round = 0; round < 60; ++round) {
    SnapshotPtr parent = catalog.Current();
    const int n_inserts = static_cast<int>(rng() % 4);
    std::vector<int> staged_ids;
    for (int i = 0; i < n_inserts; ++i) {
      Vec row(3);
      for (size_t j = 0; j < 3; ++j) {
        row[j] = static_cast<double>(rng() % 1000) / 1000.0;
      }
      staged_ids.push_back(catalog.StageInsert(row));
    }
    // Delete a live parent row sometimes, and sometimes net out a staged
    // insert (PredictPublish must mirror Publish's netting exactly).
    if (rng() % 2 == 0 && !parent->live_ids().empty()) {
      const int victim = parent->live_ids()[rng() % parent->live_ids().size()];
      catalog.StageDelete(victim);
    }
    if (rng() % 3 == 0 && !staged_ids.empty()) {
      ASSERT_TRUE(catalog.StageDelete(staged_ids.back()));
    }
    uint64_t predicted_id = 0;
    uint64_t predicted_seq = 0;
    const bool predicted =
        catalog.PredictPublish(&predicted_id, &predicted_seq);
    SnapshotPtr published = catalog.Publish();
    if (predicted) {
      EXPECT_EQ(published->id(), predicted_id) << "round " << round;
      EXPECT_EQ(published->seq(), predicted_seq) << "round " << round;
    } else {
      // Nothing staged at all: Publish must have been a no-op.
      EXPECT_EQ(published->id(), parent->id());
      EXPECT_EQ(published->seq(), parent->seq());
    }
  }
}

TEST(PredictPublishTest, FalseWhenNothingStagedTrueForNettedTombstone) {
  MutableCatalog catalog(MakeBootstrap(5, 2));
  uint64_t id = 0;
  uint64_t seq = 0;
  EXPECT_FALSE(catalog.PredictPublish(&id, &seq));
  // A staged insert netted out by its own delete still materializes as a
  // tombstone row (promised ids stay physical), so Publish is NOT a
  // no-op and the prediction must say so -- and still match.
  const int staged = catalog.StageInsert(Vec{0.5, 0.5});
  ASSERT_TRUE(catalog.StageDelete(staged));
  ASSERT_TRUE(catalog.PredictPublish(&id, &seq));
  SnapshotPtr published = catalog.Publish();
  EXPECT_EQ(published->id(), id);
  EXPECT_EQ(published->seq(), seq);
  EXPECT_EQ(published->rows(), 6u);
  EXPECT_EQ(published->live_rows(), 5u);
  EXPECT_FALSE(published->IsLive(5));
}

TEST(DurablePublishTest, SecondOpenOnALiveDirectoryIsRejected) {
  const std::string dir = MakeTempDir();
  const Dataset bootstrap = MakeBootstrap(12, 3);
  DurabilityOptions options;
  options.data_dir = dir;
  options.fsync_policy = FsyncPolicy::kOff;
  std::string error;
  auto first = DurableCatalog::Open(options, &bootstrap, &error);
  ASSERT_NE(first, nullptr) << error;

  // A second opener would checkpoint + rotate under the first; the
  // single-writer flock turns that into a typed failure instead.
  auto second = DurableCatalog::Open(options, &bootstrap, &error);
  EXPECT_EQ(second, nullptr);
  EXPECT_NE(error.find("locked by another live process"),
            std::string::npos)
      << error;

  // Releasing the first (clean shutdown or process death -- flock dies
  // with the process) makes the directory openable again.
  first.reset();
  auto third = DurableCatalog::Open(options, &bootstrap, &error);
  ASSERT_NE(third, nullptr) << error;
  EXPECT_TRUE(third->recovery().recovered);
}

TEST(DurablePublishTest, WalFailureRollsBackAndIsNeverAcked) {
  const std::string dir = MakeTempDir();
  const Dataset bootstrap = MakeBootstrap(12, 3);
  DurabilityOptions options;
  options.data_dir = dir;
  options.fsync_policy = FsyncPolicy::kAlways;
  options.checkpoint_every = 0;
  options.wrap_wal_file = [](std::unique_ptr<WalFile> inner) {
    FileFaultPlan plan;
    plan.seed = 3;
    plan.short_write_probability = 1.0;  // every WAL append tears
    return std::unique_ptr<WalFile>(
        new FaultyFile(std::move(inner), plan));
  };
  std::string error;
  uint64_t root_id = 0;
  uint64_t root_seq = 0;
  {
    auto durable = DurableCatalog::Open(options, &bootstrap, &error);
    ASSERT_NE(durable, nullptr) << error;
    SnapshotPtr root = durable->catalog()->Current();
    root_id = root->id();
    root_seq = root->seq();
    const auto outcome =
        durable->Publish({Vec{0.1, 0.2, 0.3}}, {}, /*token=*/5,
                         /*publish_id=*/1);
    EXPECT_FALSE(outcome.ok);
    EXPECT_NE(outcome.error.find("wal append failed"), std::string::npos)
        << outcome.error;
    // Rolled back: nothing applied, nothing staged, catalog unchanged.
    EXPECT_EQ(durable->catalog()->Current()->id(), root_id);
    EXPECT_EQ(durable->catalog()->staged_inserts(), 0u);
    EXPECT_EQ(durable->catalog()->staged_deletes(), 0u);
  }
  // The torn on-disk tail from the failed append must recover to exactly
  // the pre-publish state: the publish was never acknowledged, so losing
  // it is correct; resurrecting half of it would not be.
  DurabilityOptions clean = options;
  clean.wrap_wal_file = nullptr;
  auto durable = DurableCatalog::Open(clean, nullptr, &error);
  ASSERT_NE(durable, nullptr) << error;
  EXPECT_EQ(durable->recovery().snapshot_id, root_id);
  EXPECT_EQ(durable->recovery().snapshot_seq, root_seq);
  EXPECT_EQ(durable->recovery().replayed_records, 0u);
}

TEST(DurablePublishTest, FailureAfterFirstPublishKeepsTheAckedOne) {
  const std::string dir = MakeTempDir();
  const Dataset bootstrap = MakeBootstrap(12, 3);
  DurabilityOptions options;
  options.data_dir = dir;
  options.fsync_policy = FsyncPolicy::kAlways;
  options.checkpoint_every = 0;
  options.wrap_wal_file = [](std::unique_ptr<WalFile> inner) {
    FileFaultPlan plan;
    plan.fail_after_bytes = 64;  // first record fits, second hard-fails
    return std::unique_ptr<WalFile>(
        new FaultyFile(std::move(inner), plan));
  };
  std::string error;
  uint64_t acked_id = 0;
  uint64_t acked_seq = 0;
  {
    auto durable = DurableCatalog::Open(options, &bootstrap, &error);
    ASSERT_NE(durable, nullptr) << error;
    const auto first =
        durable->Publish({Vec{0.4, 0.5, 0.6}}, {}, /*token=*/5,
                         /*publish_id=*/1);
    ASSERT_TRUE(first.ok) << first.error;
    acked_id = first.snapshot->id();
    acked_seq = first.snapshot->seq();
    const auto second =
        durable->Publish({Vec{0.7, 0.8, 0.9}}, {}, /*token=*/5,
                         /*publish_id=*/2);
    EXPECT_FALSE(second.ok);
    EXPECT_EQ(durable->catalog()->Current()->id(), acked_id);
  }
  DurabilityOptions clean = options;
  clean.wrap_wal_file = nullptr;
  auto durable = DurableCatalog::Open(clean, nullptr, &error);
  ASSERT_NE(durable, nullptr) << error;
  EXPECT_EQ(durable->recovery().snapshot_id, acked_id);
  EXPECT_EQ(durable->recovery().snapshot_seq, acked_seq);
  ASSERT_EQ(durable->recovered_publishes().size(), 1u);
  EXPECT_EQ(durable->recovered_publishes()[0].publish_id, 1u);
}

TEST(DurablePublishTest, CountersAccumulateAcrossRotations) {
  const std::string dir = MakeTempDir();
  const Dataset bootstrap = MakeBootstrap(10, 2);
  DurabilityOptions options;
  options.data_dir = dir;
  options.fsync_policy = FsyncPolicy::kAlways;
  options.checkpoint_every = 1;  // rotate the WAL after every publish
  std::string error;
  auto durable = DurableCatalog::Open(options, &bootstrap, &error);
  ASSERT_NE(durable, nullptr) << error;
  for (int i = 1; i <= 3; ++i) {
    const auto outcome = durable->Publish({Vec{0.1 * i, 0.2}}, {}, 0, 0);
    ASSERT_TRUE(outcome.ok) << outcome.error;
  }
  const DurableCounters counters = durable->counters();
  // Rotations replace the WalWriter; the counters must still see all 3.
  EXPECT_EQ(counters.wal_appends, 3u);
  EXPECT_EQ(counters.wal_fsyncs, 3u);
  EXPECT_EQ(counters.checkpoints_written, 4u);  // open seal + 3 rotations
  EXPECT_TRUE(durable->Flush());
}

#ifndef TOPRR_TSAN

// One acked publish as reported over the crash pipe.
struct AckedPublish {
  uint64_t seq = 0;
  uint64_t id = 0;
  uint64_t publish_id = 0;
};

bool WriteAll(int fd, const void* data, size_t len) {
  const char* p = static_cast<const char*>(data);
  size_t left = len;
  while (left > 0) {
    const ssize_t wrote = ::write(fd, p, left);
    if (wrote < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    p += wrote;
    left -= static_cast<size_t>(wrote);
  }
  return true;
}

// The child side: durable churn, one 24-byte ack per successful publish.
// Exits only via _exit (no gtest, no destructors) -- it is going to be
// SIGKILLed anyway.
void CrashChildMain(const std::string& dir, int ack_fd) {
  const Dataset bootstrap = MakeBootstrap(16, 3);
  DurabilityOptions options;
  options.data_dir = dir;
  options.fsync_policy = FsyncPolicy::kAlways;  // acked == durable
  options.checkpoint_every = 4;
  std::string error;
  auto durable = DurableCatalog::Open(options, &bootstrap, &error);
  if (durable == nullptr) _exit(2);
  std::vector<uint64_t> own_rows;
  for (uint64_t i = 1; i <= 500; ++i) {
    SnapshotPtr parent = durable->catalog()->Current();
    std::vector<Vec> inserts;
    const int n_inserts = 1 + static_cast<int>(i % 2);
    for (int k = 0; k < n_inserts; ++k) {
      Vec row(3);
      row[0] = 0.001 * static_cast<double>(i);
      row[1] = 0.01 * static_cast<double>(k + 1);
      row[2] = 0.5;
      inserts.push_back(row);
      own_rows.push_back(parent->rows() + static_cast<uint64_t>(k));
    }
    std::vector<uint64_t> deletes;
    if (i % 3 == 0 && own_rows.size() > 4) {
      deletes.push_back(own_rows.front());
      own_rows.erase(own_rows.begin());
    }
    const auto outcome =
        durable->Publish(inserts, deletes, /*token=*/9, /*publish_id=*/i);
    if (!outcome.ok) _exit(3);
    const uint64_t ack[3] = {outcome.snapshot->seq(), outcome.snapshot->id(),
                             i};
    if (!WriteAll(ack_fd, ack, sizeof(ack))) _exit(4);
    // Pace the churn so the parent's SIGKILL always lands mid-run (on a
    // tmpfs-backed /tmp, 500 fsynced publishes could otherwise finish
    // before the parent reads its first chunk of acks).
    ::usleep(300);
  }
  _exit(0);
}

TEST(CrashRecoveryTest, SigkillMidChurnLosesNoAckedPublish) {
  const std::string dir = MakeTempDir();
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  const pid_t pid = ::fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    ::close(fds[0]);
    CrashChildMain(dir, fds[1]);  // never returns
  }
  ::close(fds[1]);

  std::vector<AckedPublish> acked;
  bool killed = false;
  std::string buffered;
  char chunk[4096];
  while (true) {
    const ssize_t got = ::read(fds[0], chunk, sizeof(chunk));
    if (got < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (got == 0) break;  // child is gone; everything acked is in hand
    buffered.append(chunk, static_cast<size_t>(got));
    size_t pos = 0;
    while (buffered.size() - pos >= 24) {
      AckedPublish ack;
      std::memcpy(&ack.seq, buffered.data() + pos, 8);
      std::memcpy(&ack.id, buffered.data() + pos + 8, 8);
      std::memcpy(&ack.publish_id, buffered.data() + pos + 16, 8);
      acked.push_back(ack);
      pos += 24;
    }
    buffered.erase(0, pos);
    if (!killed && acked.size() >= 25) {
      // Mid-churn, mid-whatever-the-child-is-doing: kill -9.
      ASSERT_EQ(::kill(pid, SIGKILL), 0);
      killed = true;
    }
  }
  ::close(fds[0]);
  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(killed) << "child finished its 500 publishes before the "
                         "parent could read 25 acks";
  EXPECT_TRUE(WIFSIGNALED(status) && WTERMSIG(status) == SIGKILL);
  ASSERT_GE(acked.size(), 25u);

  // Restart from the same data_dir, exactly like toprr_serve would.
  DurabilityOptions options;
  options.data_dir = dir;
  options.fsync_policy = FsyncPolicy::kAlways;
  options.checkpoint_every = 4;
  std::string error;
  auto durable = DurableCatalog::Open(options, nullptr, &error);
  ASSERT_NE(durable, nullptr) << error;
  const RecoveryStats& recovery = durable->recovery();
  EXPECT_TRUE(recovery.recovered);

  // Zero acked-publish loss: the recovered head covers every ack...
  uint64_t last_acked_seq = 0;
  for (const AckedPublish& ack : acked) {
    last_acked_seq = std::max(last_acked_seq, ack.seq);
  }
  EXPECT_GE(recovery.snapshot_seq, last_acked_seq);

  // ...and zero duplicate applies / bit-identical ids: every acked
  // publish appears in the recovered dedupe table exactly once, with
  // exactly the snapshot id the child was acked.
  std::map<uint64_t, const AppliedPublishRecord*> by_publish_id;
  for (const AppliedPublishRecord& entry : durable->recovered_publishes()) {
    EXPECT_EQ(entry.token, 9u);
    const bool inserted =
        by_publish_id.emplace(entry.publish_id, &entry).second;
    EXPECT_TRUE(inserted) << "publish " << entry.publish_id
                          << " applied twice";
  }
  for (const AckedPublish& ack : acked) {
    const auto it = by_publish_id.find(ack.publish_id);
    ASSERT_NE(it, by_publish_id.end())
        << "acked publish " << ack.publish_id << " lost after kill -9";
    EXPECT_EQ(it->second->snapshot_seq, ack.seq);
    EXPECT_EQ(it->second->snapshot_id, ack.id)
        << "recovered snapshot id for publish " << ack.publish_id
        << " is not bit-identical to the acked one";
  }
}

#endif  // !TOPRR_TSAN

}  // namespace
}  // namespace toprr
