// Parameterized whole-pipeline fuzz: across seeds, dimensions,
// distributions and parameters, verify structural invariants of the
// solver output and equality of the result region under every
// optimization toggle combination.
#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/toprr.h"
#include "data/generator.h"
#include "pref/pref_space.h"

namespace toprr {
namespace {

struct FuzzConfig {
  uint64_t seed;
  size_t n;
  size_t d;
  Distribution dist;
  int k;
  double sigma;
};

class PipelineFuzz : public ::testing::TestWithParam<FuzzConfig> {};

TEST_P(PipelineFuzz, InvariantsAndToggleEquivalence) {
  const FuzzConfig config = GetParam();
  const Dataset ds =
      GenerateSynthetic(config.n, config.d, config.dist, config.seed);
  Rng rng(config.seed + 7);
  const PrefBox box = RandomPrefBox(config.d - 1, config.sigma, rng);

  ToprrOptions base;
  base.time_budget_seconds = 30.0;
  const ToprrResult reference = SolveToprr(ds, config.k, box, base);
  ASSERT_FALSE(reference.timed_out);

  // --- Structural invariants. ---
  // (1) Every impact halfspace normal is the negated full weight vector of
  //     a preference point: components <= 0 summing to -1.
  for (const Halfspace& h : reference.impact_halfspaces) {
    EXPECT_NEAR(h.normal.Sum(), -1.0, 1e-9);
    for (size_t j = 0; j < h.dim(); ++j) {
      EXPECT_LE(h.normal[j], 1e-12);
    }
    // Offsets are negated k-th scores, which live in [-1, 0].
    EXPECT_LE(-h.offset, 1.0 + 1e-9);
    EXPECT_GE(-h.offset, -1e-9);
  }
  // (2) Vall vertices lie inside the query box.
  for (const Vec& v : reference.vall) {
    EXPECT_TRUE(box.Contains(v, 1e-7)) << v.ToString();
  }
  // (3) The option-space top corner is always top-ranking.
  EXPECT_TRUE(reference.Contains(Vec(config.d, 1.0)));
  // (4) The all-zero option never is (someone scores higher).
  EXPECT_FALSE(reference.Contains(Vec(config.d, 0.0)));

  // --- Toggle equivalence: disabling any optimization must not change the
  //     region (only the work done to compute it). ---
  std::vector<ToprrOptions> variants;
  {
    ToprrOptions o = base;
    o.use_lemma5 = false;
    variants.push_back(o);
  }
  {
    ToprrOptions o = base;
    o.use_lemma7 = false;
    variants.push_back(o);
  }
  {
    ToprrOptions o = base;
    o.use_kswitch = false;
    variants.push_back(o);
  }
  {
    ToprrOptions o = base;
    o.method = ToprrMethod::kTas;
    variants.push_back(o);
  }
  for (size_t vi = 0; vi < variants.size(); ++vi) {
    const ToprrResult other = SolveToprr(ds, config.k, box, variants[vi]);
    ASSERT_FALSE(other.timed_out) << "variant " << vi;
    int checked = 0;
    for (int trial = 0; trial < 400; ++trial) {
      Vec o(config.d);
      for (size_t j = 0; j < config.d; ++j) o[j] = rng.Uniform();
      double closest = 1e9;
      for (const Halfspace& h : reference.impact_halfspaces) {
        closest = std::min(closest,
                           std::abs(h.Violation(o)) / h.normal.Norm());
      }
      for (const Halfspace& h : other.impact_halfspaces) {
        closest = std::min(closest,
                           std::abs(h.Violation(o)) / h.normal.Norm());
      }
      if (closest < 1e-6) continue;
      ++checked;
      EXPECT_EQ(reference.Contains(o), other.Contains(o))
          << "variant " << vi << " point " << o.ToString();
    }
    EXPECT_GT(checked, 100) << "variant " << vi;
  }
}

std::vector<FuzzConfig> MakeConfigs() {
  std::vector<FuzzConfig> configs;
  uint64_t seed = 1000;
  for (size_t d : {2, 3, 4}) {
    for (Distribution dist : {Distribution::kIndependent,
                              Distribution::kCorrelated,
                              Distribution::kAnticorrelated}) {
      for (int k : {2, 7}) {
        configs.push_back(FuzzConfig{++seed, 250, d, dist, k,
                                     d == 2 ? 0.15 : 0.04});
      }
    }
  }
  return configs;
}

INSTANTIATE_TEST_SUITE_P(Sweep, PipelineFuzz,
                         ::testing::ValuesIn(MakeConfigs()));

}  // namespace
}  // namespace toprr
