// End-to-end tests of the serving front-end (serve/server.h +
// serve/client.h) over real loopback sockets: correctness against the
// engine, explicit admission-control rejections, per-query budget
// expiry, malformed-request handling, and prompt cancellation on
// shutdown. Labeled `serve` through the CMake test glob.
#include "serve/server.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/resource.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include "common/rng.h"
#include "data/generator.h"
#include "serve/client.h"
#include "serve/framing.h"
#include "serve/protocol.h"

namespace toprr {
namespace serve {
namespace {

PrefBox Box(std::initializer_list<double> lo,
            std::initializer_list<double> hi) {
  PrefBox box;
  box.lo = Vec(lo);
  box.hi = Vec(hi);
  return box;
}

// Starts a server on an ephemeral loopback port; fails the test on error.
std::unique_ptr<ToprrServer> StartServer(const Dataset& data,
                                         ServerConfig config) {
  config.host = "127.0.0.1";
  config.port = 0;
  auto server = std::make_unique<ToprrServer>(
      DatasetSnapshot::FromDataset(data), config);
  std::string error;
  EXPECT_TRUE(server->Start(&error)) << error;
  return server;
}

TEST(ServeServerTest, ServedResultsMatchTheEngine) {
  const Dataset data =
      GenerateSynthetic(2000, 3, Distribution::kIndependent, 42);
  auto server = StartServer(data, ServerConfig{});

  Rng rng(43);
  std::vector<ToprrQuery> queries;
  for (int i = 0; i < 5; ++i) {
    queries.push_back(
        ToprrQuery::FromBox(2 + i, RandomPrefBox(2, 0.03, rng)));
  }
  ToprrClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server->port()))
      << client.last_error();
  auto responses = client.SolveBatch(queries);
  ASSERT_TRUE(responses.has_value()) << client.last_error();
  ASSERT_EQ(responses->size(), queries.size());

  ToprrEngine reference(DatasetSnapshot::FromDataset(data));
  for (size_t i = 0; i < queries.size(); ++i) {
    SCOPED_TRACE(i);
    const ServeResponse& response = (*responses)[i];
    ASSERT_EQ(response.status, ServeStatus::kOk);
    const ToprrResult expected = reference.Solve(queries[i]);
    ASSERT_EQ(response.impact_halfspaces.size(),
              expected.impact_halfspaces.size());
    for (size_t h = 0; h < expected.impact_halfspaces.size(); ++h) {
      EXPECT_EQ(response.impact_halfspaces[h].offset,
                expected.impact_halfspaces[h].offset);
    }
    EXPECT_EQ(response.stats.vall_unique, expected.stats.vall_unique);
    EXPECT_EQ(response.stats.regions_tested, expected.stats.regions_tested);
    // Scheduler telemetry flows back over the wire.
    EXPECT_EQ(response.stats.tasks_executed,
              expected.stats.scheduler.TotalExecuted());
  }
  const ServerStatsSnapshot stats = server->stats().Snapshot();
  EXPECT_EQ(stats.queries_completed, queries.size());
  EXPECT_EQ(stats.protocol_errors, 0u);
}

TEST(ServeServerTest, OverloadedBatchGetsExplicitRejection) {
  const Dataset data =
      GenerateSynthetic(500, 3, Distribution::kIndependent, 44);
  ServerConfig config;
  config.max_inflight_queries = 2;
  auto server = StartServer(data, config);

  // 5 queries against an in-flight bound of 2: the batch must be
  // rejected as a whole, immediately and explicitly -- not parked.
  Rng rng(45);
  std::vector<ToprrQuery> queries;
  for (int i = 0; i < 5; ++i) {
    queries.push_back(ToprrQuery::FromBox(3, RandomPrefBox(2, 0.02, rng)));
  }
  ToprrClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server->port()));
  auto responses = client.SolveBatch(queries);
  ASSERT_TRUE(responses.has_value()) << client.last_error();
  ASSERT_EQ(responses->size(), queries.size());
  for (const ServeResponse& response : *responses) {
    EXPECT_EQ(response.status, ServeStatus::kRejectedOverload);
  }
  EXPECT_EQ(server->stats().Snapshot().queries_rejected_overload, 5u);

  // A batch that fits is admitted on the same connection afterwards.
  auto small = client.SolveBatch(
      {ToprrQuery::FromBox(3, RandomPrefBox(2, 0.02, rng))});
  ASSERT_TRUE(small.has_value()) << client.last_error();
  EXPECT_EQ((*small)[0].status, ServeStatus::kOk);
}

TEST(ServeServerTest, BudgetExpiryReturnsBudgetExceeded) {
  // An effectively-zero budget expires at the scheduler's first
  // per-region check, so the response must be kBudgetExceeded no matter
  // how fast the machine is.
  const Dataset data =
      GenerateSynthetic(3000, 4, Distribution::kAnticorrelated, 46);
  auto server = StartServer(data, ServerConfig{});

  ToprrOptions options;
  options.time_budget_seconds = 1e-9;
  ToprrQuery query = ToprrQuery::FromBox(
      10, Box({0.1, 0.1, 0.1}, {0.2, 0.2, 0.2}), options);
  ToprrClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server->port()));
  auto responses = client.SolveBatch({query});
  ASSERT_TRUE(responses.has_value()) << client.last_error();
  ASSERT_EQ(responses->size(), 1u);
  EXPECT_EQ((*responses)[0].status, ServeStatus::kBudgetExceeded);
  EXPECT_TRUE((*responses)[0].impact_halfspaces.empty());
  EXPECT_EQ(server->stats().Snapshot().queries_budget_exceeded, 1u);
}

TEST(ServeServerTest, ServerClampsRunawayBudgets) {
  const Dataset data =
      GenerateSynthetic(400, 3, Distribution::kIndependent, 47);
  ServerConfig config;
  config.max_query_budget_seconds = 1e-9;  // everything expires
  auto server = StartServer(data, config);

  // The query asks for an unlimited budget; the server must clamp it.
  ToprrQuery query = ToprrQuery::FromBox(3, Box({0.2, 0.2}, {0.3, 0.3}));
  ASSERT_EQ(query.options.time_budget_seconds, 0.0);
  ToprrClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server->port()));
  auto responses = client.SolveBatch({query});
  ASSERT_TRUE(responses.has_value()) << client.last_error();
  EXPECT_EQ((*responses)[0].status, ServeStatus::kBudgetExceeded);
}

TEST(ServeServerTest, UnsolvableQueriesAnswerMalformed) {
  const Dataset data =
      GenerateSynthetic(300, 3, Distribution::kIndependent, 48);
  auto server = StartServer(data, ServerConfig{});
  ToprrClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server->port()));

  // k beyond the dataset, k = 0, and a dimension mismatch: each must be
  // answered (kMalformed), while the valid query in the same batch is
  // solved -- a poisoned batch does not take the good queries down.
  std::vector<ToprrQuery> queries;
  queries.push_back(ToprrQuery::FromBox(1000000, Box({0.1, 0.1},
                                                     {0.2, 0.2})));
  queries.push_back(ToprrQuery::FromBox(0, Box({0.1, 0.1}, {0.2, 0.2})));
  queries.push_back(
      ToprrQuery::FromBox(3, Box({0.1, 0.1, 0.1}, {0.2, 0.2, 0.2})));
  queries.push_back(ToprrQuery::FromBox(3, Box({0.1, 0.1}, {0.2, 0.2})));
  auto responses = client.SolveBatch(queries);
  ASSERT_TRUE(responses.has_value()) << client.last_error();
  ASSERT_EQ(responses->size(), 4u);
  EXPECT_EQ((*responses)[0].status, ServeStatus::kMalformed);
  EXPECT_EQ((*responses)[1].status, ServeStatus::kMalformed);
  EXPECT_EQ((*responses)[2].status, ServeStatus::kMalformed);
  EXPECT_EQ((*responses)[3].status, ServeStatus::kOk);
}

TEST(ServeServerTest, UndecodableFrameGetsMalformedMarkerAndSyncHolds) {
  const Dataset data =
      GenerateSynthetic(300, 3, Distribution::kIndependent, 49);
  auto server = StartServer(data, ServerConfig{});

  ToprrClient good;
  ASSERT_TRUE(good.Connect("127.0.0.1", server->port()));

  // The library client cannot send garbage, so drive the framing
  // primitives over a hand-made socket: a syntactically valid frame
  // whose payload is protocol garbage must get an explicit
  // kMalformed-marker reply, and the connection must stay in sync.
  {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<uint16_t>(server->port()));
    ASSERT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
    ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr),
                        sizeof(addr)),
              0);
    FdStream stream(fd);
    ASSERT_TRUE(WriteFrame(stream, "this is not a toprr payload"));
    std::string reply;
    ASSERT_EQ(ReadFrame(stream, &reply), FrameReadStatus::kOk);
    std::vector<ServeResponse> responses;
    std::string error;
    ASSERT_TRUE(DecodeResponseBatch(reply, &responses, &error)) << error;
    ASSERT_EQ(responses.size(), 1u);
    EXPECT_EQ(responses[0].status, ServeStatus::kMalformed);
    ::close(fd);
  }
  EXPECT_GE(server->stats().Snapshot().protocol_errors, 1u);

  // The server keeps serving well-formed clients.
  auto ok = good.SolveBatch(
      {ToprrQuery::FromBox(3, Box({0.1, 0.1}, {0.2, 0.2}))});
  ASSERT_TRUE(ok.has_value()) << good.last_error();
  EXPECT_EQ((*ok)[0].status, ServeStatus::kOk);
}

TEST(ServeServerTest, CacheEnabledServerHitsOnRepeatedQueries) {
  const Dataset data =
      GenerateSynthetic(1500, 3, Distribution::kIndependent, 53);
  ServerConfig config;
  config.use_region_cache = true;
  auto server = StartServer(data, config);

  // The same clientele box queried repeatedly: first solve misses and
  // populates, the rest hit. Results must be identical across the batch
  // and match a cache-off engine.
  const PrefBox box = Box({16.0 / 256, 20.0 / 256},
                          {24.0 / 256, 28.0 / 256});
  std::vector<ToprrQuery> queries(4, ToprrQuery::FromBox(5, box));
  ToprrClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server->port()));
  auto responses = client.SolveBatch(queries);
  ASSERT_TRUE(responses.has_value()) << client.last_error();
  ASSERT_EQ(responses->size(), 4u);

  ToprrEngine reference(DatasetSnapshot::FromDataset(data));
  const ToprrResult expected = reference.Solve(queries[0]);
  uint64_t hits = 0;
  uint64_t misses = 0;
  for (const ServeResponse& response : *responses) {
    ASSERT_EQ(response.status, ServeStatus::kOk);
    ASSERT_EQ(response.impact_halfspaces.size(),
              expected.impact_halfspaces.size());
    for (size_t h = 0; h < expected.impact_halfspaces.size(); ++h) {
      EXPECT_EQ(response.impact_halfspaces[h].offset,
                expected.impact_halfspaces[h].offset);
    }
    const auto lookup =
        static_cast<CacheLookup>(response.stats.cache_lookup);
    if (lookup == CacheLookup::kHit) {
      ++hits;
      EXPECT_GT(response.stats.cache_tasks_saved, 0u);
    } else if (lookup == CacheLookup::kMiss) {
      ++misses;
    }
  }
  // batch_threads defaults to 1, so the four copies run sequentially:
  // exactly one miss, three hits.
  EXPECT_EQ(misses, 1u);
  EXPECT_EQ(hits, 3u);
  const ServerStatsSnapshot stats = server->stats().Snapshot();
  EXPECT_EQ(stats.cache_misses, 1u);
  EXPECT_EQ(stats.cache_hits, 3u);
  EXPECT_GT(stats.cache_tasks_saved, 0u);
  EXPECT_EQ(stats.protocol_errors, 0u);
}

TEST(ServeServerTest, StopCancelsInFlightWork) {
  // A huge anticorrelated instance with an unlimited budget would run
  // for a very long time; Stop() must cut it loose via the cancel
  // plumbing and return promptly.
  const Dataset data =
      GenerateSynthetic(20000, 4, Distribution::kAnticorrelated, 50);
  ServerConfig config;
  config.max_query_budget_seconds = 0.0;  // no clamp: rely on cancel
  auto server = StartServer(data, config);

  ToprrClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server->port()));
  std::thread rpc([&client] {
    // The reply may be a kShutdown response or a dropped connection,
    // depending on timing; both are acceptable shutdown behavior.
    client.SolveBatch({ToprrQuery::FromBox(
        10, Box({0.05, 0.05, 0.05}, {0.45, 0.45, 0.45}))});
  });
  // Give the query time to reach the solver.
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  server->Stop();
  rpc.join();
  SUCCEED();  // reaching here promptly IS the assertion (test timeout)
}

TEST(ServeServerTest, StopWhileCacheHotNeitherDeadlocksNorLeaks) {
  // Shutdown with the region cache enabled and traffic in flight:
  // solves may hold shared_ptr pins into cache entries while Stop()
  // tears the server (and with it the engine + cache) down. The
  // shared_ptr payload design makes this safe; this test is the
  // regression net, and runs under ASan (leaks) and TSan (races) in CI.
  const Dataset data =
      GenerateSynthetic(20000, 4, Distribution::kAnticorrelated, 54);
  ServerConfig config;
  config.max_query_budget_seconds = 0.0;  // no clamp: rely on cancel
  config.use_region_cache = true;
  auto server = StartServer(data, config);

  // One cheap repeated box that populates the cache and keeps hitting,
  // plus one huge slow query that is mid-solve when Stop() lands.
  const PrefBox hot = Box({16.0 / 256, 16.0 / 256, 16.0 / 256},
                          {20.0 / 256, 20.0 / 256, 20.0 / 256});
  std::atomic<bool> done{false};
  std::thread hot_loop([&] {
    ToprrClient client;
    if (!client.Connect("127.0.0.1", server->port())) return;
    while (!done.load(std::memory_order_acquire)) {
      // Failures are expected once shutdown begins; just keep the
      // cache-hit path busy until then.
      if (!client.SolveBatch({ToprrQuery::FromBox(3, hot)}).has_value()) {
        return;
      }
    }
  });
  std::thread slow_rpc([&server] {
    ToprrClient client;
    if (!client.Connect("127.0.0.1", server->port())) return;
    client.SolveBatch({ToprrQuery::FromBox(
        10, Box({0.05, 0.05, 0.05}, {0.45, 0.45, 0.45}))});
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  server->Stop();
  done.store(true, std::memory_order_release);
  hot_loop.join();
  slow_rpc.join();
  SUCCEED();  // prompt return without deadlock IS the assertion
}

TEST(ServeServerTest, ClientSurvivesServerGoingAway) {
  const Dataset data =
      GenerateSynthetic(300, 3, Distribution::kIndependent, 51);
  auto server = StartServer(data, ServerConfig{});
  ToprrClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server->port()));
  auto first = client.SolveBatch(
      {ToprrQuery::FromBox(3, Box({0.1, 0.1}, {0.2, 0.2}))});
  ASSERT_TRUE(first.has_value());
  server->Stop();
  // The next RPC must fail cleanly (error string, no hang, no crash).
  auto second = client.SolveBatch(
      {ToprrQuery::FromBox(3, Box({0.1, 0.1}, {0.2, 0.2}))});
  EXPECT_FALSE(second.has_value());
  EXPECT_FALSE(client.last_error().empty());
}

TEST(ServeServerTest, ConcurrentConnectionsAllComplete) {
  const Dataset data =
      GenerateSynthetic(1500, 3, Distribution::kIndependent, 52);
  ServerConfig config;
  config.max_inflight_queries = 256;
  auto server = StartServer(data, config);

  constexpr int kClients = 4;
  constexpr int kRpcsPerClient = 3;
  std::atomic<int> completed{0};
  std::vector<std::thread> threads;
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      ToprrClient client;
      if (!client.Connect("127.0.0.1", server->port())) return;
      Rng rng(100 + c);
      for (int r = 0; r < kRpcsPerClient; ++r) {
        auto responses = client.SolveBatch(
            {ToprrQuery::FromBox(4, RandomPrefBox(2, 0.02, rng))});
        if (responses.has_value() &&
            (*responses)[0].status == ServeStatus::kOk) {
          completed.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(completed.load(), kClients * kRpcsPerClient);
  EXPECT_EQ(server->stats().Snapshot().connections_accepted,
            static_cast<uint64_t>(kClients));
}

TEST(ServeServerTest, CatalogPublishBecomesVisibleAfterSync) {
  // The live-catalog constructor: publish + SyncCatalog moves traffic to
  // the new snapshot without restarting the server or quiescing clients.
  const Dataset data =
      GenerateSynthetic(800, 3, Distribution::kIndependent, 60);
  auto catalog = std::make_shared<MutableCatalog>(data);
  ServerConfig config;
  config.host = "127.0.0.1";
  config.port = 0;
  auto server = std::make_unique<ToprrServer>(catalog, config);
  std::string error;
  ASSERT_TRUE(server->Start(&error)) << error;

  ToprrClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server->port()))
      << client.last_error();
  const ToprrQuery query =
      ToprrQuery::FromBox(3, Box({0.2, 0.2}, {0.25, 0.25}));
  auto before = client.SolveBatch({query});
  ASSERT_TRUE(before.has_value());
  ASSERT_EQ((*before)[0].status, ServeStatus::kOk);

  // A dominating row changes the answer; before Sync the server still
  // serves the pinned old version, after Sync the new one.
  catalog->StageInsert(Vec{0.99, 0.99, 0.99});
  const SnapshotPtr v2 = catalog->Publish();
  auto unsynced = client.SolveBatch({query});
  ASSERT_TRUE(unsynced.has_value());
  EXPECT_EQ((*unsynced)[0].impact_halfspaces.size(),
            (*before)[0].impact_halfspaces.size());

  EXPECT_EQ(server->SyncCatalog(), v2->id());
  auto after = client.SolveBatch({query});
  ASSERT_TRUE(after.has_value());
  ASSERT_EQ((*after)[0].status, ServeStatus::kOk);
  ToprrEngine reference(v2);
  const ToprrResult expected = reference.Solve(query);
  ASSERT_EQ((*after)[0].impact_halfspaces.size(),
            expected.impact_halfspaces.size());
  for (size_t h = 0; h < expected.impact_halfspaces.size(); ++h) {
    EXPECT_EQ((*after)[0].impact_halfspaces[h].offset,
              expected.impact_halfspaces[h].offset);
  }
  server->Stop();
}

TEST(ServeServerTest, HandshakeAdvertisesLimitsAndServedSnapshot) {
  const Dataset data =
      GenerateSynthetic(700, 3, Distribution::kIndependent, 61);
  ServerConfig config;
  config.max_inflight_queries = 48;
  config.max_staged_mutations = 123;
  auto server = StartServer(data, config);

  ToprrClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server->port()))
      << client.last_error();
  const ServerHello& hello = client.server();
  EXPECT_EQ(hello.max_frame_payload_bytes, kMaxFramePayloadBytes);
  EXPECT_EQ(hello.max_inflight_queries, 48u);
  EXPECT_EQ(hello.max_staged_mutations, 123u);
  EXPECT_EQ(hello.live_rows, 700u);
  EXPECT_EQ(hello.physical_rows, 700u);
  EXPECT_EQ(hello.dim, 3u);
  EXPECT_EQ(hello.snapshot_seq, 1u);  // a root snapshot
  EXPECT_NE(hello.snapshot_id, 0u);
}

TEST(ServeServerTest, WireMutationsPublishAndBecomeVisible) {
  const Dataset data =
      GenerateSynthetic(800, 3, Distribution::kIndependent, 62);
  auto server = StartServer(data, ServerConfig{});
  ToprrClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server->port()))
      << client.last_error();
  const ToprrQuery query =
      ToprrQuery::FromBox(3, Box({0.2, 0.2}, {0.25, 0.25}));
  auto before = client.Query(query);
  ASSERT_TRUE(before.has_value()) << client.last_error();
  ASSERT_EQ(before->status, ServeStatus::kOk);
  EXPECT_EQ(before->snapshot_seq, 1u);

  // Stage a dominating row and publish: the ack must already reflect the
  // new version (SyncCatalog runs before the ack goes out).
  auto staged = client.StageInsert({Vec{0.99, 0.99, 0.99}});
  ASSERT_TRUE(staged.has_value()) << client.last_error();
  ASSERT_EQ(staged->status, MutationStatus::kOk) << staged->message;
  EXPECT_EQ(staged->staged_inserts, 1u);
  EXPECT_EQ(staged->snapshot_seq, 1u);  // staged, not yet published
  auto published = client.Publish();
  ASSERT_TRUE(published.has_value()) << client.last_error();
  ASSERT_EQ(published->status, MutationStatus::kOk) << published->message;
  EXPECT_EQ(published->snapshot_seq, 2u);
  EXPECT_EQ(published->live_rows, 801u);
  EXPECT_EQ(published->physical_rows, 801u);
  EXPECT_EQ(published->staged_inserts, 0u);  // session cleared

  // Read-your-writes on the same connection: the very next query must
  // observe the published write, no waiting.
  auto after = client.Query(query);
  ASSERT_TRUE(after.has_value()) << client.last_error();
  ASSERT_EQ(after->status, ServeStatus::kOk);
  EXPECT_GE(after->snapshot_seq, published->snapshot_seq);
  ToprrEngine reference(server->engine().snapshot());
  const ToprrResult expected = reference.Solve(query);
  ASSERT_EQ(after->impact_halfspaces.size(),
            expected.impact_halfspaces.size());
  for (size_t h = 0; h < expected.impact_halfspaces.size(); ++h) {
    EXPECT_EQ(after->impact_halfspaces[h].offset,
              expected.impact_halfspaces[h].offset);
  }
  // The dominating row changed the answer.
  EXPECT_NE(after->impact_halfspaces.size(),
            before->impact_halfspaces.size());

  // Delete the inserted row again (its physical id counts up from the
  // pre-publish physical row count) and the original answer returns.
  const uint64_t inserted_id = published->physical_rows - 1;
  auto del = client.StageDelete({inserted_id});
  ASSERT_TRUE(del.has_value()) << client.last_error();
  ASSERT_EQ(del->status, MutationStatus::kOk) << del->message;
  auto republished = client.Publish();
  ASSERT_TRUE(republished.has_value()) << client.last_error();
  ASSERT_EQ(republished->status, MutationStatus::kOk)
      << republished->message;
  EXPECT_EQ(republished->snapshot_seq, 3u);
  EXPECT_EQ(republished->live_rows, 800u);
  auto restored = client.Query(query);
  ASSERT_TRUE(restored.has_value()) << client.last_error();
  EXPECT_EQ(restored->impact_halfspaces.size(),
            before->impact_halfspaces.size());

  const ServerStatsSnapshot stats = server->stats().Snapshot();
  EXPECT_EQ(stats.publishes_applied, 2u);
  EXPECT_EQ(stats.mutations_staged, 2u);
  EXPECT_EQ(stats.protocol_errors, 0u);
}

TEST(ServeServerTest, StagedDeltaLimitRejectsWholeFrames) {
  const Dataset data =
      GenerateSynthetic(300, 3, Distribution::kIndependent, 63);
  ServerConfig config;
  config.max_staged_mutations = 4;
  auto server = StartServer(data, config);
  ToprrClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server->port()));

  auto first = client.StageInsert(
      {Vec{0.1, 0.1, 0.1}, Vec{0.2, 0.2, 0.2}, Vec{0.3, 0.3, 0.3}});
  ASSERT_TRUE(first.has_value());
  ASSERT_EQ(first->status, MutationStatus::kOk);
  EXPECT_EQ(first->staged_inserts, 3u);

  // 3 + 2 > 4: rejected whole, nothing from the frame staged.
  auto over = client.StageInsert({Vec{0.4, 0.4, 0.4}, Vec{0.5, 0.5, 0.5}});
  ASSERT_TRUE(over.has_value());
  EXPECT_EQ(over->status, MutationStatus::kLimitExceeded);
  EXPECT_EQ(over->staged_inserts, 3u);
  auto over_del = client.StageDelete({0, 1});
  ASSERT_TRUE(over_del.has_value());
  EXPECT_EQ(over_del->status, MutationStatus::kLimitExceeded);
  EXPECT_EQ(over_del->staged_deletes, 0u);

  // Exactly at the bound is fine, and publishing frees the budget.
  auto fits = client.StageDelete({0});
  ASSERT_TRUE(fits.has_value());
  EXPECT_EQ(fits->status, MutationStatus::kOk);
  auto published = client.Publish();
  ASSERT_TRUE(published.has_value());
  ASSERT_EQ(published->status, MutationStatus::kOk) << published->message;
  auto again = client.StageInsert({Vec{0.6, 0.6, 0.6}});
  ASSERT_TRUE(again.has_value());
  EXPECT_EQ(again->status, MutationStatus::kOk);
}

TEST(ServeServerTest, InvalidMutationsStageNothing) {
  const Dataset data =
      GenerateSynthetic(300, 3, Distribution::kIndependent, 64);
  auto server = StartServer(data, ServerConfig{});
  ToprrClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server->port()));

  // Dimension mismatch poisons the whole frame, valid rows included.
  auto bad_dim = client.StageInsert({Vec{0.1, 0.1, 0.1}, Vec{0.2, 0.2}});
  ASSERT_TRUE(bad_dim.has_value());
  EXPECT_EQ(bad_dim->status, MutationStatus::kInvalidArgument);
  EXPECT_EQ(bad_dim->staged_inserts, 0u);
  EXPECT_FALSE(bad_dim->message.empty());

  auto non_finite = client.StageInsert(
      {Vec{0.1, std::numeric_limits<double>::infinity(), 0.1}});
  ASSERT_TRUE(non_finite.has_value());
  EXPECT_EQ(non_finite->status, MutationStatus::kInvalidArgument);

  auto unknown_row = client.StageDelete({0, 999999});
  ASSERT_TRUE(unknown_row.has_value());
  EXPECT_EQ(unknown_row->status, MutationStatus::kInvalidArgument);
  EXPECT_EQ(unknown_row->staged_deletes, 0u);

  auto duplicate = client.StageDelete({5, 5});
  ASSERT_TRUE(duplicate.has_value());
  EXPECT_EQ(duplicate->status, MutationStatus::kInvalidArgument);
  EXPECT_EQ(duplicate->staged_deletes, 0u);

  // CatalogInfo is a pure read: session untouched, current version out.
  auto info = client.CatalogInfo();
  ASSERT_TRUE(info.has_value());
  EXPECT_EQ(info->status, MutationStatus::kOk);
  EXPECT_EQ(info->staged_inserts, 0u);
  EXPECT_EQ(info->snapshot_seq, 1u);
  EXPECT_EQ(server->stats().Snapshot().publishes_applied, 0u);
}

TEST(ServeServerTest, PublishConflictKeepsTheDeltaStaged) {
  const Dataset data =
      GenerateSynthetic(300, 3, Distribution::kIndependent, 65);
  auto server = StartServer(data, ServerConfig{});
  ToprrClient loser, winner;
  ASSERT_TRUE(loser.Connect("127.0.0.1", server->port()));
  ASSERT_TRUE(winner.Connect("127.0.0.1", server->port()));

  // Both connections stage a delete of the same row; the first publish
  // wins, the second must come back kConflict with its delta kept.
  auto staged_l = loser.StageDelete({7});
  ASSERT_TRUE(staged_l.has_value());
  ASSERT_EQ(staged_l->status, MutationStatus::kOk);
  auto staged_w = winner.StageDelete({7});
  ASSERT_TRUE(staged_w.has_value());
  ASSERT_EQ(staged_w->status, MutationStatus::kOk);

  auto won = winner.Publish();
  ASSERT_TRUE(won.has_value());
  ASSERT_EQ(won->status, MutationStatus::kOk) << won->message;
  auto lost = loser.Publish();
  ASSERT_TRUE(lost.has_value());
  EXPECT_EQ(lost->status, MutationStatus::kConflict);
  EXPECT_EQ(lost->staged_deletes, 1u);  // kept for amendment
  EXPECT_FALSE(lost->message.empty());
  EXPECT_EQ(server->stats().Snapshot().publishes_rejected, 1u);
}

TEST(ServeServerTest, ForeignVersionFrameGetsFrozenRejection) {
  const Dataset data =
      GenerateSynthetic(300, 3, Distribution::kIndependent, 66);
  auto server = StartServer(data, ServerConfig{});

  // Hand-roll a v2 frame: a well-formed v3 hello with the version byte
  // patched, the shape an old client generation would produce.
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(server->port()));
  ASSERT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
  ASSERT_EQ(
      ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  FdStream stream(fd);
  std::string old_frame = EncodeHello();
  old_frame[4] = 2;  // the version byte
  ASSERT_TRUE(WriteFrame(stream, old_frame));
  std::string reply;
  ASSERT_EQ(ReadFrame(stream, &reply), FrameReadStatus::kOk);
  uint8_t server_version = 0, min_version = 0;
  ASSERT_TRUE(DecodeVersionMismatch(reply, &server_version, &min_version));
  EXPECT_EQ(server_version, kProtocolVersion);
  EXPECT_EQ(min_version, kMinProtocolVersion);
  // The server closed the connection after the rejection.
  EXPECT_EQ(ReadFrame(stream, &reply), FrameReadStatus::kEof);
  ::close(fd);
  EXPECT_EQ(server->stats().Snapshot().version_mismatches, 1u);

  // The typed client error: point a client at a fake v2 server.
  const int listener = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(listener, 0);
  sockaddr_in bind_addr{};
  bind_addr.sin_family = AF_INET;
  bind_addr.sin_port = 0;
  ASSERT_EQ(::inet_pton(AF_INET, "127.0.0.1", &bind_addr.sin_addr), 1);
  ASSERT_EQ(::bind(listener, reinterpret_cast<sockaddr*>(&bind_addr),
                   sizeof(bind_addr)),
            0);
  ASSERT_EQ(::listen(listener, 1), 0);
  socklen_t addr_len = sizeof(bind_addr);
  ::getsockname(listener, reinterpret_cast<sockaddr*>(&bind_addr),
                &addr_len);
  std::thread fake_server([listener] {
    const int conn = ::accept(listener, nullptr, nullptr);
    if (conn < 0) return;
    FdStream conn_stream(conn);
    std::string ignored;
    ReadFrame(conn_stream, &ignored);
    WriteFrame(conn_stream, EncodeVersionMismatch(2, 2));
    ::close(conn);
  });
  ToprrClient client;
  EXPECT_FALSE(
      client.Connect("127.0.0.1", ntohs(bind_addr.sin_port)));
  EXPECT_EQ(client.last_error_code(), ClientError::kVersionMismatch);
  EXPECT_NE(client.last_error().find("v2"), std::string::npos);
  fake_server.join();
  ::close(listener);
}

TEST(ServeServerTest, ReadYourWritesAcrossConnections) {
  const Dataset data =
      GenerateSynthetic(600, 3, Distribution::kIndependent, 67);
  auto server = StartServer(data, ServerConfig{});
  ToprrClient writer, reader;
  ASSERT_TRUE(writer.Connect("127.0.0.1", server->port()));
  ASSERT_TRUE(reader.Connect("127.0.0.1", server->port()));

  auto staged = writer.StageInsert({Vec{0.95, 0.95, 0.95}});
  ASSERT_TRUE(staged.has_value());
  ASSERT_EQ(staged->status, MutationStatus::kOk);
  auto published = writer.Publish();
  ASSERT_TRUE(published.has_value());
  ASSERT_EQ(published->status, MutationStatus::kOk);

  // The reader waits for the acked seq, then must observe it.
  ASSERT_TRUE(reader.WaitForSnapshot(published->snapshot_seq))
      << reader.last_error();
  auto response =
      reader.Query(ToprrQuery::FromBox(3, Box({0.2, 0.2}, {0.25, 0.25})));
  ASSERT_TRUE(response.has_value()) << reader.last_error();
  ASSERT_EQ(response->status, ServeStatus::kOk);
  EXPECT_GE(response->snapshot_seq, published->snapshot_seq);
}

TEST(ServeServerTest, ConcurrentWriterAndReadersStayMonotone) {
  // The TSan-relevant stress: one connection publishing deltas while
  // two others query. Every reader's snapshot_seq stream must be
  // monotone non-decreasing across its RPC rounds, and nothing may
  // race, drop, or error.
  const Dataset data =
      GenerateSynthetic(500, 3, Distribution::kIndependent, 68);
  ServerConfig config;
  config.max_inflight_queries = 64;
  auto server = StartServer(data, config);

  constexpr int kPublishes = 8;
  constexpr int kReaderRpcs = 12;
  std::atomic<int> ok_publishes{0};
  std::atomic<int> ok_queries{0};
  std::atomic<int> seq_regressions{0};
  std::thread writer_thread([&] {
    ToprrClient writer;
    if (!writer.Connect("127.0.0.1", server->port())) return;
    Rng rng(200);
    uint64_t last_seq = 0;
    for (int i = 0; i < kPublishes; ++i) {
      Vec row(3);
      for (size_t j = 0; j < 3; ++j) row[j] = rng.Uniform();
      auto staged = writer.StageInsert({row});
      if (!staged.has_value() || staged->status != MutationStatus::kOk) {
        return;
      }
      auto published = writer.Publish();
      if (!published.has_value() ||
          published->status != MutationStatus::kOk) {
        return;
      }
      if (published->snapshot_seq < last_seq) seq_regressions.fetch_add(1);
      last_seq = published->snapshot_seq;
      ok_publishes.fetch_add(1);
    }
  });
  std::vector<std::thread> readers;
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([&, r] {
      ToprrClient reader;
      if (!reader.Connect("127.0.0.1", server->port())) return;
      Rng rng(300 + r);
      uint64_t last_seq = 0;
      for (int i = 0; i < kReaderRpcs; ++i) {
        auto response = reader.Query(
            ToprrQuery::FromBox(3, RandomPrefBox(2, 0.02, rng)));
        if (!response.has_value()) return;
        if (response->status == ServeStatus::kOk) ok_queries.fetch_add(1);
        if (response->snapshot_seq < last_seq) seq_regressions.fetch_add(1);
        last_seq = response->snapshot_seq;
      }
    });
  }
  writer_thread.join();
  for (std::thread& thread : readers) thread.join();
  EXPECT_EQ(ok_publishes.load(), kPublishes);
  EXPECT_EQ(ok_queries.load(), 2 * kReaderRpcs);
  EXPECT_EQ(seq_regressions.load(), 0);
  const ServerStatsSnapshot stats = server->stats().Snapshot();
  EXPECT_EQ(stats.publishes_applied, static_cast<uint64_t>(kPublishes));
  EXPECT_EQ(stats.protocol_errors, 0u);
}

// ---- Failure hardening: deadlines, timeouts, drain, retry, EMFILE ----

// The stalled-solve fixture: a huge anticorrelated instance with no
// budget clamp runs far longer than any deadline in these tests.
Dataset StalledSolveData() {
  return GenerateSynthetic(20000, 4, Distribution::kAnticorrelated, 50);
}

ToprrQuery StalledSolveQuery(int num_threads) {
  ToprrOptions options;
  options.num_threads = num_threads;
  return ToprrQuery::FromBox(
      10, Box({0.05, 0.05, 0.05}, {0.45, 0.45, 0.45}), options);
}

// Sends a 50ms-deadline batch over a raw socket (no client-side read
// timeout, so a sanitizer-slowed cancel unwind cannot fail the test on
// the client end) and requires the server to answer DEADLINE_EXCEEDED
// in bounded time. The client-knob path (QueryOptions::deadline_seconds
// -> wire) is covered by ServerClampsDeadlineToConfiguredCeiling.
void ExpectDeadlineExceeded(int solver_threads) {
  ServerConfig config;
  config.max_query_budget_seconds = 0.0;  // no clamp: rely on the deadline
  auto server = StartServer(StalledSolveData(), config);
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(server->port()));
  ASSERT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
  ASSERT_EQ(
      ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  FdStream stream(fd);

  const auto start = std::chrono::steady_clock::now();
  ASSERT_TRUE(WriteFrame(
      stream, EncodeQueryBatch({StalledSolveQuery(solver_threads)},
                               /*deadline_ms=*/50)));
  std::string reply;
  ASSERT_EQ(ReadFrame(stream, &reply), FrameReadStatus::kOk);
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  ::close(fd);
  // Bounded time: the deadline fires at 50ms and the cooperative cancel
  // unwinds the solve promptly -- nowhere near the minutes the full
  // solve would take. The bound is generous for sanitizer builds.
  EXPECT_LT(elapsed, 30.0);
  std::vector<ServeResponse> responses;
  std::string error;
  ASSERT_TRUE(DecodeResponseBatch(reply, &responses, &error)) << error;
  ASSERT_EQ(responses.size(), 1u);
  EXPECT_EQ(responses[0].status, ServeStatus::kDeadlineExceeded);
  EXPECT_GE(server->stats().Snapshot().queries_deadline_exceeded, 1u);
}

TEST(ServeServerTest, DeadlineExceededOnStalledSequentialSolve) {
  ExpectDeadlineExceeded(/*solver_threads=*/1);
}

TEST(ServeServerTest, DeadlineExceededOnStalledWorkStealingSolve) {
  ExpectDeadlineExceeded(/*solver_threads=*/4);
}

TEST(ServeServerTest, GenerousDeadlineDoesNotDisturbFastQueries) {
  const Dataset data =
      GenerateSynthetic(500, 3, Distribution::kIndependent, 71);
  auto server = StartServer(data, ServerConfig{});
  ToprrClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server->port()));
  QueryOptions options;
  options.deadline_seconds = 30.0;
  auto response = client.Query(
      ToprrQuery::FromBox(3, Box({0.1, 0.1}, {0.2, 0.2})), options);
  ASSERT_TRUE(response.has_value()) << client.last_error();
  EXPECT_EQ(response->status, ServeStatus::kOk);
  EXPECT_EQ(server->stats().Snapshot().queries_deadline_exceeded, 0u);
}

TEST(ServeServerTest, ServerClampsDeadlineToConfiguredCeiling) {
  // With the ceiling at 1ms, even a generous client deadline expires:
  // proof the server-side clamp (not the client knob) is in charge.
  auto server = [] {
    ServerConfig config;
    config.max_query_budget_seconds = 0.0;
    config.max_deadline_ms = 1;
    return StartServer(StalledSolveData(), config);
  }();
  ToprrClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server->port()));
  QueryOptions options;
  options.deadline_seconds = 60.0;
  auto response = client.Query(StalledSolveQuery(1), options);
  ASSERT_TRUE(response.has_value()) << client.last_error();
  EXPECT_EQ(response->status, ServeStatus::kDeadlineExceeded);
}

TEST(ServeServerTest, IdleTimeoutEvictsSilentConnections) {
  const Dataset data =
      GenerateSynthetic(300, 3, Distribution::kIndependent, 72);
  ServerConfig config;
  config.idle_timeout_ms = 100;
  auto server = StartServer(data, config);

  // A connection that never sends a byte must be evicted, not pinned.
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(server->port()));
  ASSERT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
  ASSERT_EQ(
      ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  char byte;
  // The blocking read returns 0 (EOF) when the server closes our end.
  const ssize_t n = ::read(fd, &byte, 1);
  EXPECT_EQ(n, 0);
  ::close(fd);
  EXPECT_GE(server->stats().Snapshot().timeouts_idle, 1u);

  // A well-behaved client on the same server is unaffected.
  ToprrClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server->port()));
  auto ok = client.Query(ToprrQuery::FromBox(3, Box({0.1, 0.1},
                                                    {0.2, 0.2})));
  ASSERT_TRUE(ok.has_value()) << client.last_error();
  EXPECT_EQ(ok->status, ServeStatus::kOk);
}

TEST(ServeServerTest, HeaderTimeoutEvictsMidFramePeers) {
  const Dataset data =
      GenerateSynthetic(300, 3, Distribution::kIndependent, 73);
  ServerConfig config;
  config.idle_timeout_ms = 10000;  // generous between frames...
  config.header_read_timeout_ms = 100;  // ...strict once one starts
  auto server = StartServer(data, config);

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(server->port()));
  ASSERT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
  ASSERT_EQ(
      ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  // Two bytes of a length prefix, then silence: a slowloris peer. The
  // watcher switched to the header timeout, so eviction comes at 100ms,
  // not the 10s idle allowance.
  const auto start = std::chrono::steady_clock::now();
  ASSERT_EQ(::send(fd, "\x08\x00", 2, 0), 2);
  char byte;
  const ssize_t n = ::read(fd, &byte, 1);
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  EXPECT_EQ(n, 0);
  EXPECT_LT(elapsed, 5.0);
  ::close(fd);
  EXPECT_GE(server->stats().Snapshot().timeouts_read, 1u);
}

TEST(ServeServerTest, DrainRejectsNewWorkThenStops) {
  ServerConfig config;
  config.max_query_budget_seconds = 0.0;
  auto server = StartServer(StalledSolveData(), config);

  ToprrClient stalled, probe;
  ASSERT_TRUE(stalled.Connect("127.0.0.1", server->port()));
  ASSERT_TRUE(probe.Connect("127.0.0.1", server->port()));
  std::thread stalled_rpc([&stalled] {
    // Will be cancelled when the drain grace expires; a kShutdown
    // response or a dropped connection are both acceptable.
    stalled.Query(StalledSolveQuery(1));
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(300));

  std::thread drainer([&server] { server->Drain(/*grace_seconds=*/1.5); });
  // Give Drain a moment to flip the flag, then offer new work on the
  // EXISTING connection: it must be answered (connection still up) with
  // the typed rejection, not solved and not dropped.
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  EXPECT_TRUE(server->draining());
  auto rejected = probe.Query(ToprrQuery::FromBox(
      10, Box({0.05, 0.05, 0.05}, {0.45, 0.45, 0.45})));
  if (rejected.has_value()) {
    EXPECT_EQ(rejected->status, ServeStatus::kRejectedDraining);
    EXPECT_GE(server->stats().Snapshot().queries_rejected_draining, 1u);
  }
  drainer.join();
  stalled_rpc.join();
  // Drain ends in a full stop: no accepting, no serving.
  ToprrClient late;
  EXPECT_FALSE(late.Connect("127.0.0.1", server->port()));
}

TEST(ServeServerTest, RetryingClientSurvivesServerRestart) {
  const Dataset data =
      GenerateSynthetic(400, 3, Distribution::kIndependent, 74);
  auto first = StartServer(data, ServerConfig{});
  const int port = first->port();

  ToprrClient client;
  RetryPolicy policy;
  policy.max_attempts = 6;
  policy.initial_backoff_ms = 5.0;
  client.set_retry_policy(policy);
  ASSERT_TRUE(client.Connect("127.0.0.1", port));
  const ToprrQuery query =
      ToprrQuery::FromBox(3, Box({0.1, 0.1}, {0.2, 0.2}));
  auto before = client.Query(query);
  ASSERT_TRUE(before.has_value()) << client.last_error();
  ASSERT_EQ(before->status, ServeStatus::kOk);

  // Kill the server, bring a fresh one up on the SAME port, query again:
  // the retry policy must reconnect + re-handshake transparently.
  first->Stop();
  first.reset();
  ServerConfig config;
  config.host = "127.0.0.1";
  config.port = port;
  auto second = std::make_unique<ToprrServer>(
      DatasetSnapshot::FromDataset(data), config);
  std::string error;
  ASSERT_TRUE(second->Start(&error)) << error;

  auto after = client.Query(query);
  ASSERT_TRUE(after.has_value()) << client.last_error();
  EXPECT_EQ(after->status, ServeStatus::kOk);
  EXPECT_GE(client.reconnects(), 1u);
  EXPECT_GE(client.retries(), 1u);
}

TEST(ServeServerTest, RetryingClientRestoresStagedDeltaAcrossReconnect) {
  const Dataset data =
      GenerateSynthetic(400, 3, Distribution::kIndependent, 75);
  auto first = StartServer(data, ServerConfig{});
  const int port = first->port();

  ToprrClient client;
  RetryPolicy policy;
  policy.max_attempts = 6;
  policy.initial_backoff_ms = 5.0;
  client.set_retry_policy(policy);
  ASSERT_TRUE(client.Connect("127.0.0.1", port));
  auto staged = client.StageInsert({Vec{0.9, 0.9, 0.9}});
  ASSERT_TRUE(staged.has_value());
  ASSERT_EQ(staged->status, MutationStatus::kOk);

  first->Stop();
  first.reset();
  ServerConfig config;
  config.host = "127.0.0.1";
  config.port = port;
  auto second = std::make_unique<ToprrServer>(
      DatasetSnapshot::FromDataset(data), config);
  std::string error;
  ASSERT_TRUE(second->Start(&error)) << error;

  // The server-side session died with the connection; the client's
  // mirror re-stages it during the internal reconnect, so the publish
  // carries the insert.
  auto published = client.Publish();
  ASSERT_TRUE(published.has_value()) << client.last_error();
  ASSERT_EQ(published->status, MutationStatus::kOk) << published->message;
  EXPECT_EQ(published->physical_rows, 401u);
  EXPECT_GE(client.reconnects(), 1u);
}

TEST(ServeServerTest, DuplicatePublishIsDedupedByIdempotencyToken) {
  const Dataset data =
      GenerateSynthetic(300, 3, Distribution::kIndependent, 76);
  auto server = StartServer(data, ServerConfig{});

  // Drive the wire directly: the library client never re-sends a
  // publish whose ack it received, so the lost-ack retry is hand-rolled
  // here -- stage, publish (token 42, id 1), re-stage the same delta
  // (what a reconnecting client's mirror restore does), re-publish the
  // SAME (token, id). The second publish must answer already_applied
  // with the catalog unchanged.
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(server->port()));
  ASSERT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
  ASSERT_EQ(
      ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  FdStream stream(fd);
  std::string reply, error;
  MutationAck ack;

  const auto mutate = [&](const std::string& request) {
    ASSERT_TRUE(WriteFrame(stream, request));
    ASSERT_EQ(ReadFrame(stream, &reply), FrameReadStatus::kOk);
    ASSERT_TRUE(DecodeMutationAck(reply, &ack, &error)) << error;
  };

  mutate(EncodeStageInsert({Vec{0.9, 0.9, 0.9}}));
  ASSERT_EQ(ack.status, MutationStatus::kOk) << ack.message;
  mutate(EncodePublish(/*idempotency_token=*/42, /*publish_id=*/1));
  ASSERT_EQ(ack.status, MutationStatus::kOk) << ack.message;
  EXPECT_FALSE(ack.already_applied);
  EXPECT_EQ(ack.idempotency_token, 42u);
  EXPECT_EQ(ack.publish_id, 1u);
  const uint64_t rows_after_first = ack.physical_rows;
  EXPECT_EQ(rows_after_first, 301u);

  mutate(EncodeStageInsert({Vec{0.9, 0.9, 0.9}}));
  ASSERT_EQ(ack.status, MutationStatus::kOk) << ack.message;
  mutate(EncodePublish(/*idempotency_token=*/42, /*publish_id=*/1));
  ASSERT_EQ(ack.status, MutationStatus::kOk) << ack.message;
  EXPECT_TRUE(ack.already_applied);
  EXPECT_EQ(ack.physical_rows, rows_after_first);  // nothing re-applied
  EXPECT_EQ(ack.staged_inserts, 0u);  // the duplicate delta was cleared

  // A NEW publish id from the same token applies normally.
  mutate(EncodeStageInsert({Vec{0.8, 0.8, 0.8}}));
  ASSERT_EQ(ack.status, MutationStatus::kOk) << ack.message;
  mutate(EncodePublish(/*idempotency_token=*/42, /*publish_id=*/2));
  ASSERT_EQ(ack.status, MutationStatus::kOk) << ack.message;
  EXPECT_FALSE(ack.already_applied);
  EXPECT_EQ(ack.physical_rows, rows_after_first + 1);
  ::close(fd);

  const ServerStatsSnapshot stats = server->stats().Snapshot();
  EXPECT_EQ(stats.publishes_applied, 2u);
  EXPECT_EQ(stats.publishes_deduped, 1u);
}

TEST(ServeServerTest, WaitForSnapshotHonorsItsDeadlineExactly) {
  const Dataset data =
      GenerateSynthetic(300, 3, Distribution::kIndependent, 77);
  auto server = StartServer(data, ServerConfig{});
  ToprrClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server->port()));

  // Already satisfied: returns immediately.
  EXPECT_TRUE(client.WaitForSnapshot(1, /*timeout_seconds=*/5.0));

  // Unsatisfiable: must give up at the deadline -- not at the next
  // multiple of a fixed poll interval past it, and not early.
  const auto start = std::chrono::steady_clock::now();
  EXPECT_FALSE(client.WaitForSnapshot(999999, /*timeout_seconds=*/0.3));
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  EXPECT_GE(elapsed, 0.28);
  EXPECT_LT(elapsed, 1.0);
}

TEST(ServeServerTest, AcceptSurvivesFdExhaustion) {
#if defined(__SANITIZE_THREAD__)
  GTEST_SKIP() << "TSan cannot run threads after a multi-threaded fork";
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
  GTEST_SKIP() << "TSan cannot run threads after a multi-threaded fork";
#endif
#endif
  // RLIMIT_NOFILE games poison the whole process, so the scenario runs
  // in a forked child: exhaust fds, prove accept fails EMFILE without
  // killing the accept loop, prove existing connections keep being
  // served, lift the limit, prove new connections work again. Each
  // numbered _exit marks the failing step.
  const pid_t pid = ::fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    const Dataset data =
        GenerateSynthetic(200, 3, Distribution::kIndependent, 78);
    ServerConfig config;
    config.host = "127.0.0.1";
    config.port = 0;
    ToprrServer server(DatasetSnapshot::FromDataset(data), config);
    std::string error;
    if (!server.Start(&error)) ::_exit(2);
    ToprrClient existing;
    if (!existing.Connect("127.0.0.1", server.port())) ::_exit(3);
    const ToprrQuery query =
        ToprrQuery::FromBox(3, Box({0.1, 0.1}, {0.2, 0.2}));
    auto first = existing.Query(query);
    if (!first.has_value() || first->status != ServeStatus::kOk) ::_exit(4);

    // Pre-open the probe socket while fds are still available, then
    // drop the soft limit to zero: every accept(2) now fails EMFILE.
    const int probe = ::socket(AF_INET, SOCK_STREAM, 0);
    if (probe < 0) ::_exit(5);
    struct rlimit saved;
    if (::getrlimit(RLIMIT_NOFILE, &saved) != 0) ::_exit(6);
    struct rlimit tight = saved;
    tight.rlim_cur = 0;
    if (::setrlimit(RLIMIT_NOFILE, &tight) != 0) ::_exit(7);

    // The TCP handshake completes via the backlog regardless; the
    // server-side accept fails EMFILE, logs, breathes, and keeps going.
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<uint16_t>(server.port()));
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    ::connect(probe, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
    std::this_thread::sleep_for(std::chrono::milliseconds(150));

    // The accept loop must still be alive AND existing connections must
    // still be served while fds are exhausted.
    auto during = existing.Query(query);
    if (!during.has_value() || during->status != ServeStatus::kOk) {
      ::_exit(8);
    }

    // Lift the limit: the loop (which never died) accepts again.
    if (::setrlimit(RLIMIT_NOFILE, &saved) != 0) ::_exit(9);
    ::close(probe);
    ToprrClient late;
    if (!late.Connect("127.0.0.1", server.port())) ::_exit(10);
    auto after = late.Query(query);
    if (!after.has_value() || after->status != ServeStatus::kOk) {
      ::_exit(11);
    }
    server.Stop();
    ::_exit(0);
  }
  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFEXITED(status)) << "child did not exit cleanly";
  EXPECT_EQ(WEXITSTATUS(status), 0) << "failing child step";
}

}  // namespace
}  // namespace serve
}  // namespace toprr
