// End-to-end tests of the serving front-end (serve/server.h +
// serve/client.h) over real loopback sockets: correctness against the
// engine, explicit admission-control rejections, per-query budget
// expiry, malformed-request handling, and prompt cancellation on
// shutdown. Labeled `serve` through the CMake test glob.
#include "serve/server.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "common/rng.h"
#include "data/generator.h"
#include "serve/client.h"
#include "serve/framing.h"

namespace toprr {
namespace serve {
namespace {

PrefBox Box(std::initializer_list<double> lo,
            std::initializer_list<double> hi) {
  PrefBox box;
  box.lo = Vec(lo);
  box.hi = Vec(hi);
  return box;
}

// Starts a server on an ephemeral loopback port; fails the test on error.
std::unique_ptr<ToprrServer> StartServer(const Dataset& data,
                                         ServerConfig config) {
  config.host = "127.0.0.1";
  config.port = 0;
  auto server = std::make_unique<ToprrServer>(&data, config);
  std::string error;
  EXPECT_TRUE(server->Start(&error)) << error;
  return server;
}

TEST(ServeServerTest, ServedResultsMatchTheEngine) {
  const Dataset data =
      GenerateSynthetic(2000, 3, Distribution::kIndependent, 42);
  auto server = StartServer(data, ServerConfig{});

  Rng rng(43);
  std::vector<ToprrQuery> queries;
  for (int i = 0; i < 5; ++i) {
    queries.push_back(
        ToprrQuery::FromBox(2 + i, RandomPrefBox(2, 0.03, rng)));
  }
  ToprrClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server->port()))
      << client.last_error();
  auto responses = client.SolveBatch(queries);
  ASSERT_TRUE(responses.has_value()) << client.last_error();
  ASSERT_EQ(responses->size(), queries.size());

  ToprrEngine reference(&data);
  for (size_t i = 0; i < queries.size(); ++i) {
    SCOPED_TRACE(i);
    const ServeResponse& response = (*responses)[i];
    ASSERT_EQ(response.status, ServeStatus::kOk);
    const ToprrResult expected = reference.Solve(queries[i]);
    ASSERT_EQ(response.impact_halfspaces.size(),
              expected.impact_halfspaces.size());
    for (size_t h = 0; h < expected.impact_halfspaces.size(); ++h) {
      EXPECT_EQ(response.impact_halfspaces[h].offset,
                expected.impact_halfspaces[h].offset);
    }
    EXPECT_EQ(response.stats.vall_unique, expected.stats.vall_unique);
    EXPECT_EQ(response.stats.regions_tested, expected.stats.regions_tested);
    // Scheduler telemetry flows back over the wire.
    EXPECT_EQ(response.stats.tasks_executed,
              expected.stats.scheduler.TotalExecuted());
  }
  const ServerStatsSnapshot stats = server->stats().Snapshot();
  EXPECT_EQ(stats.queries_completed, queries.size());
  EXPECT_EQ(stats.protocol_errors, 0u);
}

TEST(ServeServerTest, OverloadedBatchGetsExplicitRejection) {
  const Dataset data =
      GenerateSynthetic(500, 3, Distribution::kIndependent, 44);
  ServerConfig config;
  config.max_inflight_queries = 2;
  auto server = StartServer(data, config);

  // 5 queries against an in-flight bound of 2: the batch must be
  // rejected as a whole, immediately and explicitly -- not parked.
  Rng rng(45);
  std::vector<ToprrQuery> queries;
  for (int i = 0; i < 5; ++i) {
    queries.push_back(ToprrQuery::FromBox(3, RandomPrefBox(2, 0.02, rng)));
  }
  ToprrClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server->port()));
  auto responses = client.SolveBatch(queries);
  ASSERT_TRUE(responses.has_value()) << client.last_error();
  ASSERT_EQ(responses->size(), queries.size());
  for (const ServeResponse& response : *responses) {
    EXPECT_EQ(response.status, ServeStatus::kRejectedOverload);
  }
  EXPECT_EQ(server->stats().Snapshot().queries_rejected_overload, 5u);

  // A batch that fits is admitted on the same connection afterwards.
  auto small = client.SolveBatch(
      {ToprrQuery::FromBox(3, RandomPrefBox(2, 0.02, rng))});
  ASSERT_TRUE(small.has_value()) << client.last_error();
  EXPECT_EQ((*small)[0].status, ServeStatus::kOk);
}

TEST(ServeServerTest, BudgetExpiryReturnsBudgetExceeded) {
  // An effectively-zero budget expires at the scheduler's first
  // per-region check, so the response must be kBudgetExceeded no matter
  // how fast the machine is.
  const Dataset data =
      GenerateSynthetic(3000, 4, Distribution::kAnticorrelated, 46);
  auto server = StartServer(data, ServerConfig{});

  ToprrOptions options;
  options.time_budget_seconds = 1e-9;
  ToprrQuery query = ToprrQuery::FromBox(
      10, Box({0.1, 0.1, 0.1}, {0.2, 0.2, 0.2}), options);
  ToprrClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server->port()));
  auto responses = client.SolveBatch({query});
  ASSERT_TRUE(responses.has_value()) << client.last_error();
  ASSERT_EQ(responses->size(), 1u);
  EXPECT_EQ((*responses)[0].status, ServeStatus::kBudgetExceeded);
  EXPECT_TRUE((*responses)[0].impact_halfspaces.empty());
  EXPECT_EQ(server->stats().Snapshot().queries_budget_exceeded, 1u);
}

TEST(ServeServerTest, ServerClampsRunawayBudgets) {
  const Dataset data =
      GenerateSynthetic(400, 3, Distribution::kIndependent, 47);
  ServerConfig config;
  config.max_query_budget_seconds = 1e-9;  // everything expires
  auto server = StartServer(data, config);

  // The query asks for an unlimited budget; the server must clamp it.
  ToprrQuery query = ToprrQuery::FromBox(3, Box({0.2, 0.2}, {0.3, 0.3}));
  ASSERT_EQ(query.options.time_budget_seconds, 0.0);
  ToprrClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server->port()));
  auto responses = client.SolveBatch({query});
  ASSERT_TRUE(responses.has_value()) << client.last_error();
  EXPECT_EQ((*responses)[0].status, ServeStatus::kBudgetExceeded);
}

TEST(ServeServerTest, UnsolvableQueriesAnswerMalformed) {
  const Dataset data =
      GenerateSynthetic(300, 3, Distribution::kIndependent, 48);
  auto server = StartServer(data, ServerConfig{});
  ToprrClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server->port()));

  // k beyond the dataset, k = 0, and a dimension mismatch: each must be
  // answered (kMalformed), while the valid query in the same batch is
  // solved -- a poisoned batch does not take the good queries down.
  std::vector<ToprrQuery> queries;
  queries.push_back(ToprrQuery::FromBox(1000000, Box({0.1, 0.1},
                                                     {0.2, 0.2})));
  queries.push_back(ToprrQuery::FromBox(0, Box({0.1, 0.1}, {0.2, 0.2})));
  queries.push_back(
      ToprrQuery::FromBox(3, Box({0.1, 0.1, 0.1}, {0.2, 0.2, 0.2})));
  queries.push_back(ToprrQuery::FromBox(3, Box({0.1, 0.1}, {0.2, 0.2})));
  auto responses = client.SolveBatch(queries);
  ASSERT_TRUE(responses.has_value()) << client.last_error();
  ASSERT_EQ(responses->size(), 4u);
  EXPECT_EQ((*responses)[0].status, ServeStatus::kMalformed);
  EXPECT_EQ((*responses)[1].status, ServeStatus::kMalformed);
  EXPECT_EQ((*responses)[2].status, ServeStatus::kMalformed);
  EXPECT_EQ((*responses)[3].status, ServeStatus::kOk);
}

TEST(ServeServerTest, UndecodableFrameGetsMalformedMarkerAndSyncHolds) {
  const Dataset data =
      GenerateSynthetic(300, 3, Distribution::kIndependent, 49);
  auto server = StartServer(data, ServerConfig{});

  ToprrClient good;
  ASSERT_TRUE(good.Connect("127.0.0.1", server->port()));

  // The library client cannot send garbage, so drive the framing
  // primitives over a hand-made socket: a syntactically valid frame
  // whose payload is protocol garbage must get an explicit
  // kMalformed-marker reply, and the connection must stay in sync.
  {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<uint16_t>(server->port()));
    ASSERT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
    ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr),
                        sizeof(addr)),
              0);
    FdStream stream(fd);
    ASSERT_TRUE(WriteFrame(stream, "this is not a toprr payload"));
    std::string reply;
    ASSERT_EQ(ReadFrame(stream, &reply), FrameReadStatus::kOk);
    std::vector<ServeResponse> responses;
    std::string error;
    ASSERT_TRUE(DecodeResponseBatch(reply, &responses, &error)) << error;
    ASSERT_EQ(responses.size(), 1u);
    EXPECT_EQ(responses[0].status, ServeStatus::kMalformed);
    ::close(fd);
  }
  EXPECT_GE(server->stats().Snapshot().protocol_errors, 1u);

  // The server keeps serving well-formed clients.
  auto ok = good.SolveBatch(
      {ToprrQuery::FromBox(3, Box({0.1, 0.1}, {0.2, 0.2}))});
  ASSERT_TRUE(ok.has_value()) << good.last_error();
  EXPECT_EQ((*ok)[0].status, ServeStatus::kOk);
}

TEST(ServeServerTest, CacheEnabledServerHitsOnRepeatedQueries) {
  const Dataset data =
      GenerateSynthetic(1500, 3, Distribution::kIndependent, 53);
  ServerConfig config;
  config.use_region_cache = true;
  auto server = StartServer(data, config);

  // The same clientele box queried repeatedly: first solve misses and
  // populates, the rest hit. Results must be identical across the batch
  // and match a cache-off engine.
  const PrefBox box = Box({16.0 / 256, 20.0 / 256},
                          {24.0 / 256, 28.0 / 256});
  std::vector<ToprrQuery> queries(4, ToprrQuery::FromBox(5, box));
  ToprrClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server->port()));
  auto responses = client.SolveBatch(queries);
  ASSERT_TRUE(responses.has_value()) << client.last_error();
  ASSERT_EQ(responses->size(), 4u);

  ToprrEngine reference(&data);
  const ToprrResult expected = reference.Solve(queries[0]);
  uint64_t hits = 0;
  uint64_t misses = 0;
  for (const ServeResponse& response : *responses) {
    ASSERT_EQ(response.status, ServeStatus::kOk);
    ASSERT_EQ(response.impact_halfspaces.size(),
              expected.impact_halfspaces.size());
    for (size_t h = 0; h < expected.impact_halfspaces.size(); ++h) {
      EXPECT_EQ(response.impact_halfspaces[h].offset,
                expected.impact_halfspaces[h].offset);
    }
    const auto lookup =
        static_cast<CacheLookup>(response.stats.cache_lookup);
    if (lookup == CacheLookup::kHit) {
      ++hits;
      EXPECT_GT(response.stats.cache_tasks_saved, 0u);
    } else if (lookup == CacheLookup::kMiss) {
      ++misses;
    }
  }
  // batch_threads defaults to 1, so the four copies run sequentially:
  // exactly one miss, three hits.
  EXPECT_EQ(misses, 1u);
  EXPECT_EQ(hits, 3u);
  const ServerStatsSnapshot stats = server->stats().Snapshot();
  EXPECT_EQ(stats.cache_misses, 1u);
  EXPECT_EQ(stats.cache_hits, 3u);
  EXPECT_GT(stats.cache_tasks_saved, 0u);
  EXPECT_EQ(stats.protocol_errors, 0u);
}

TEST(ServeServerTest, StopCancelsInFlightWork) {
  // A huge anticorrelated instance with an unlimited budget would run
  // for a very long time; Stop() must cut it loose via the cancel
  // plumbing and return promptly.
  const Dataset data =
      GenerateSynthetic(20000, 4, Distribution::kAnticorrelated, 50);
  ServerConfig config;
  config.max_query_budget_seconds = 0.0;  // no clamp: rely on cancel
  auto server = StartServer(data, config);

  ToprrClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server->port()));
  std::thread rpc([&client] {
    // The reply may be a kShutdown response or a dropped connection,
    // depending on timing; both are acceptable shutdown behavior.
    client.SolveBatch({ToprrQuery::FromBox(
        10, Box({0.05, 0.05, 0.05}, {0.45, 0.45, 0.45}))});
  });
  // Give the query time to reach the solver.
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  server->Stop();
  rpc.join();
  SUCCEED();  // reaching here promptly IS the assertion (test timeout)
}

TEST(ServeServerTest, StopWhileCacheHotNeitherDeadlocksNorLeaks) {
  // Shutdown with the region cache enabled and traffic in flight:
  // solves may hold shared_ptr pins into cache entries while Stop()
  // tears the server (and with it the engine + cache) down. The
  // shared_ptr payload design makes this safe; this test is the
  // regression net, and runs under ASan (leaks) and TSan (races) in CI.
  const Dataset data =
      GenerateSynthetic(20000, 4, Distribution::kAnticorrelated, 54);
  ServerConfig config;
  config.max_query_budget_seconds = 0.0;  // no clamp: rely on cancel
  config.use_region_cache = true;
  auto server = StartServer(data, config);

  // One cheap repeated box that populates the cache and keeps hitting,
  // plus one huge slow query that is mid-solve when Stop() lands.
  const PrefBox hot = Box({16.0 / 256, 16.0 / 256, 16.0 / 256},
                          {20.0 / 256, 20.0 / 256, 20.0 / 256});
  std::atomic<bool> done{false};
  std::thread hot_loop([&] {
    ToprrClient client;
    if (!client.Connect("127.0.0.1", server->port())) return;
    while (!done.load(std::memory_order_acquire)) {
      // Failures are expected once shutdown begins; just keep the
      // cache-hit path busy until then.
      if (!client.SolveBatch({ToprrQuery::FromBox(3, hot)}).has_value()) {
        return;
      }
    }
  });
  std::thread slow_rpc([&server] {
    ToprrClient client;
    if (!client.Connect("127.0.0.1", server->port())) return;
    client.SolveBatch({ToprrQuery::FromBox(
        10, Box({0.05, 0.05, 0.05}, {0.45, 0.45, 0.45}))});
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  server->Stop();
  done.store(true, std::memory_order_release);
  hot_loop.join();
  slow_rpc.join();
  SUCCEED();  // prompt return without deadlock IS the assertion
}

TEST(ServeServerTest, ClientSurvivesServerGoingAway) {
  const Dataset data =
      GenerateSynthetic(300, 3, Distribution::kIndependent, 51);
  auto server = StartServer(data, ServerConfig{});
  ToprrClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server->port()));
  auto first = client.SolveBatch(
      {ToprrQuery::FromBox(3, Box({0.1, 0.1}, {0.2, 0.2}))});
  ASSERT_TRUE(first.has_value());
  server->Stop();
  // The next RPC must fail cleanly (error string, no hang, no crash).
  auto second = client.SolveBatch(
      {ToprrQuery::FromBox(3, Box({0.1, 0.1}, {0.2, 0.2}))});
  EXPECT_FALSE(second.has_value());
  EXPECT_FALSE(client.last_error().empty());
}

TEST(ServeServerTest, ConcurrentConnectionsAllComplete) {
  const Dataset data =
      GenerateSynthetic(1500, 3, Distribution::kIndependent, 52);
  ServerConfig config;
  config.max_inflight_queries = 256;
  auto server = StartServer(data, config);

  constexpr int kClients = 4;
  constexpr int kRpcsPerClient = 3;
  std::atomic<int> completed{0};
  std::vector<std::thread> threads;
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      ToprrClient client;
      if (!client.Connect("127.0.0.1", server->port())) return;
      Rng rng(100 + c);
      for (int r = 0; r < kRpcsPerClient; ++r) {
        auto responses = client.SolveBatch(
            {ToprrQuery::FromBox(4, RandomPrefBox(2, 0.02, rng))});
        if (responses.has_value() &&
            (*responses)[0].status == ServeStatus::kOk) {
          completed.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(completed.load(), kClients * kRpcsPerClient);
  EXPECT_EQ(server->stats().Snapshot().connections_accepted,
            static_cast<uint64_t>(kClients));
}

TEST(ServeServerTest, CatalogPublishBecomesVisibleAfterSync) {
  // The live-catalog constructor: publish + SyncCatalog moves traffic to
  // the new snapshot without restarting the server or quiescing clients.
  const Dataset data =
      GenerateSynthetic(800, 3, Distribution::kIndependent, 60);
  auto catalog = std::make_shared<MutableCatalog>(data);
  ServerConfig config;
  config.host = "127.0.0.1";
  config.port = 0;
  auto server = std::make_unique<ToprrServer>(catalog, config);
  std::string error;
  ASSERT_TRUE(server->Start(&error)) << error;

  ToprrClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server->port()))
      << client.last_error();
  const ToprrQuery query =
      ToprrQuery::FromBox(3, Box({0.2, 0.2}, {0.25, 0.25}));
  auto before = client.SolveBatch({query});
  ASSERT_TRUE(before.has_value());
  ASSERT_EQ((*before)[0].status, ServeStatus::kOk);

  // A dominating row changes the answer; before Sync the server still
  // serves the pinned old version, after Sync the new one.
  catalog->StageInsert(Vec{0.99, 0.99, 0.99});
  const SnapshotPtr v2 = catalog->Publish();
  auto unsynced = client.SolveBatch({query});
  ASSERT_TRUE(unsynced.has_value());
  EXPECT_EQ((*unsynced)[0].impact_halfspaces.size(),
            (*before)[0].impact_halfspaces.size());

  EXPECT_EQ(server->SyncCatalog(), v2->id());
  auto after = client.SolveBatch({query});
  ASSERT_TRUE(after.has_value());
  ASSERT_EQ((*after)[0].status, ServeStatus::kOk);
  ToprrEngine reference(v2);
  const ToprrResult expected = reference.Solve(query);
  ASSERT_EQ((*after)[0].impact_halfspaces.size(),
            expected.impact_halfspaces.size());
  for (size_t h = 0; h < expected.impact_halfspaces.size(); ++h) {
    EXPECT_EQ((*after)[0].impact_halfspaces[h].offset,
              expected.impact_halfspaces[h].offset);
  }
  server->Stop();
}

}  // namespace
}  // namespace serve
}  // namespace toprr
