#include "topk/onion.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "data/generator.h"
#include "topk/topk.h"

namespace toprr {
namespace {

TEST(OnionTest, FirstLayerIsHullOfSquare) {
  const Dataset ds = Dataset::FromRows({
      Vec{0.0, 0.0}, Vec{1.0, 0.0}, Vec{0.0, 1.0}, Vec{1.0, 1.0},
      Vec{0.5, 0.5},  // interior
  });
  const std::vector<int> layer1 = OnionLayers(ds, 1);
  EXPECT_EQ(layer1, (std::vector<int>{0, 1, 2, 3}));
  const std::vector<int> layers2 = OnionLayers(ds, 2);
  EXPECT_EQ(layers2.size(), 5u);  // second layer degenerates to the rest
}

TEST(OnionTest, MonotoneInK) {
  const Dataset ds = GenerateSynthetic(500, 3,
                                       Distribution::kIndependent, 20);
  size_t prev = 0;
  for (int k : {1, 2, 3, 5}) {
    const std::vector<int> layers = OnionLayers(ds, k);
    EXPECT_GE(layers.size(), prev);
    prev = layers.size();
  }
}

TEST(OnionTest, ContainsEveryTopKResult) {
  // The union of k onion layers contains the top-k of every linear query
  // with non-negative weights.
  const Dataset ds = GenerateSynthetic(400, 3,
                                       Distribution::kIndependent, 21);
  const int k = 3;
  const std::vector<int> layers = OnionLayers(ds, k);
  Rng rng(22);
  for (int trial = 0; trial < 20; ++trial) {
    Vec w(3);
    double sum = 0.0;
    for (size_t j = 0; j < 3; ++j) {
      w[j] = rng.Uniform() + 1e-3;
      sum += w[j];
    }
    w /= sum;
    const TopkResult topk = ComputeTopK(ds, w, k);
    for (const ScoredOption& e : topk.entries) {
      EXPECT_TRUE(std::binary_search(layers.begin(), layers.end(), e.id));
    }
  }
}

TEST(OnionTest, DegenerateDatasetAllReturned) {
  // Collinear 2-D points: hull is degenerate, everything lands in layer 1.
  const Dataset ds = Dataset::FromRows(
      {Vec{0.1, 0.1}, Vec{0.5, 0.5}, Vec{0.9, 0.9}});
  EXPECT_EQ(OnionLayers(ds, 1).size(), 3u);
}

}  // namespace
}  // namespace toprr
