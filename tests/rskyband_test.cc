#include "topk/rskyband.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "data/generator.h"
#include "topk/skyband.h"
#include "topk/topk.h"

namespace toprr {
namespace {

PrefBox Box2D(double lo0, double lo1, double hi0, double hi1) {
  PrefBox box;
  box.lo = Vec{lo0, lo1};
  box.hi = Vec{hi0, hi1};
  return box;
}

TEST(RDominatesTest, BasicProperties) {
  const Dataset ds = Dataset::FromRows({
      Vec{0.9, 0.9, 0.9},  // 0: dominates everything
      Vec{0.5, 0.5, 0.5},  // 1
      Vec{0.5, 0.5, 0.5},  // 2: duplicate of 1
      Vec{0.9, 0.1, 0.1},  // 3: incomparable with 1 in general
  });
  const PrefBox box = Box2D(0.2, 0.2, 0.3, 0.3);
  EXPECT_TRUE(RDominates(ds, 0, 1, box));
  EXPECT_FALSE(RDominates(ds, 1, 0, box));
  EXPECT_FALSE(RDominates(ds, 1, 1, box));
  // Duplicates: exactly one direction (by id).
  EXPECT_TRUE(RDominates(ds, 1, 2, box));
  EXPECT_FALSE(RDominates(ds, 2, 1, box));
  // Region-specific: option 3 is strong only when w[0] is large; in this
  // battery-leaning box option 1 r-dominates it.
  // S_x(1) - S_x(3) = 0.4 - 0.4 x0 + 0.4 x1 ... compute: p1 - p3 =
  // (-0.4, 0.4, 0.4); diff(x) = 0.4 + x0*(-0.4-0.4) + x1*(0.4-0.4)
  //                           = 0.4 - 0.8 x0 > 0 for x0 <= 0.3.
  EXPECT_TRUE(RDominates(ds, 1, 3, box));
  EXPECT_FALSE(RDominates(ds, 3, 1, box));
}

TEST(RDominatesTest, ImpliesDominanceIsSpecialCase) {
  // Componentwise dominance implies r-dominance for any box.
  const Dataset ds = GenerateSynthetic(100, 3, Distribution::kIndependent,
                                       60);
  Rng rng(61);
  const PrefBox box = Box2D(0.1, 0.2, 0.25, 0.35);
  for (int trial = 0; trial < 300; ++trial) {
    const int a = static_cast<int>(rng.UniformInt(0, 99));
    const int b = static_cast<int>(rng.UniformInt(0, 99));
    if (a != b && Dominates(ds, a, b)) {
      EXPECT_TRUE(RDominates(ds, a, b, box));
    }
  }
}

TEST(RSkybandTest, SubsetOfKSkyband) {
  const Dataset ds = GenerateSynthetic(600, 3,
                                       Distribution::kAnticorrelated, 62);
  const PrefBox box = Box2D(0.2, 0.2, 0.26, 0.26);
  for (int k : {1, 3, 8}) {
    const std::vector<int> rsky = RSkyband(ds, box, k);
    const std::vector<int> sky = SortBasedKSkyband(ds, k);
    for (int id : rsky) {
      EXPECT_TRUE(std::binary_search(sky.begin(), sky.end(), id));
    }
    EXPECT_LE(rsky.size(), sky.size());
  }
}

TEST(RSkybandTest, CandidateRestrictionGivesSameResult) {
  const Dataset ds = GenerateSynthetic(600, 3, Distribution::kIndependent,
                                       63);
  const PrefBox box = Box2D(0.15, 0.2, 0.22, 0.27);
  const int k = 5;
  const std::vector<int> sky = SortBasedKSkyband(ds, k);
  const std::vector<int> direct = RSkyband(ds, box, k);
  const std::vector<int> via_sky = RSkyband(ds, box, k, &sky);
  EXPECT_EQ(direct, via_sky);
}

TEST(RSkybandTest, ContainsEveryTopKInBox) {
  const Dataset ds = GenerateSynthetic(500, 4, Distribution::kIndependent,
                                       64);
  PrefBox box;
  box.lo = Vec{0.1, 0.2, 0.15};
  box.hi = Vec{0.16, 0.26, 0.21};
  const int k = 6;
  const std::vector<int> rsky = RSkyband(ds, box, k);
  EXPECT_GE(rsky.size(), static_cast<size_t>(k));
  Rng rng(65);
  for (int trial = 0; trial < 100; ++trial) {
    Vec x(3);
    for (size_t j = 0; j < 3; ++j) {
      x[j] = rng.Uniform(box.lo[j], box.hi[j]);
    }
    const TopkResult topk = ComputeTopK(ds, FullWeight(x), k);
    for (const ScoredOption& e : topk.entries) {
      EXPECT_TRUE(std::binary_search(rsky.begin(), rsky.end(), e.id))
          << "lost top-k member " << e.id;
    }
  }
}

TEST(RSkybandTest, MatchesBruteForceCount) {
  // Brute-force r-skyband over all pairs must agree.
  const Dataset ds = GenerateSynthetic(150, 3, Distribution::kIndependent,
                                       66);
  const PrefBox box = Box2D(0.25, 0.3, 0.3, 0.35);
  for (int k : {1, 2, 4}) {
    std::vector<int> brute;
    for (size_t i = 0; i < ds.size(); ++i) {
      int dominators = 0;
      for (size_t j = 0; j < ds.size(); ++j) {
        if (i != j && RDominates(ds, static_cast<int>(j),
                                 static_cast<int>(i), box)) {
          ++dominators;
        }
      }
      if (dominators < k) brute.push_back(static_cast<int>(i));
    }
    EXPECT_EQ(RSkyband(ds, box, k), brute) << "k=" << k;
  }
}

TEST(RSkybandTest, SmallerBoxPrunesMore) {
  const Dataset ds = GenerateSynthetic(800, 3,
                                       Distribution::kAnticorrelated, 67);
  const std::vector<int> narrow =
      RSkyband(ds, Box2D(0.2, 0.2, 0.22, 0.22), 5);
  const std::vector<int> wide = RSkyband(ds, Box2D(0.1, 0.1, 0.4, 0.4), 5);
  EXPECT_LE(narrow.size(), wide.size());
  // Every narrow member is a wide member (larger region = weaker
  // dominance requirement... actually the converse; just check sizes).
}

}  // namespace
}  // namespace toprr
