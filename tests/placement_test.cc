#include "core/placement.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "data/generator.h"

namespace toprr {
namespace {

Dataset PaperFigure1Dataset() {
  return Dataset::FromRows({
      Vec{0.9, 0.4},  // p1
      Vec{0.7, 0.9},  // p2
      Vec{0.6, 0.2},  // p3
      Vec{0.3, 0.8},  // p4
      Vec{0.2, 0.3},  // p5
      Vec{0.1, 0.1},  // p6
  });
}

PrefBox Interval(double lo, double hi) {
  PrefBox box;
  box.lo = Vec{lo};
  box.hi = Vec{hi};
  return box;
}

TEST(PlacementTest, MinimumCostCreationIsInRegion) {
  const Dataset ds = PaperFigure1Dataset();
  const ToprrResult region = SolveToprr(ds, 3, Interval(0.2, 0.8));
  const PlacementResult placement = MinimumCostCreation(region);
  ASSERT_TRUE(placement.ok);
  EXPECT_TRUE(region.Contains(placement.option, 1e-6));
  EXPECT_NEAR(placement.cost, placement.option.SquaredNorm(), 1e-12);
  // Optimality: no cheaper point on a dense grid inside the region.
  for (int gx = 0; gx <= 50; ++gx) {
    for (int gy = 0; gy <= 50; ++gy) {
      const Vec o{gx / 50.0, gy / 50.0};
      if (region.Contains(o, -1e-9)) {
        EXPECT_GE(o.SquaredNorm(), placement.cost - 1e-6);
      }
    }
  }
}

TEST(PlacementTest, EnhancementMatchesPaperScenario) {
  // Paper Fig. 1(c): revamping p4 = (0.3, 0.8) moves it to the boundary of
  // oR at minimum Euclidean distance.
  const Dataset ds = PaperFigure1Dataset();
  const ToprrResult region = SolveToprr(ds, 3, Interval(0.2, 0.8));
  const Vec p4{0.3, 0.8};
  ASSERT_FALSE(region.Contains(p4));
  const PlacementResult placement = MinimumModification(region, p4);
  ASSERT_TRUE(placement.ok);
  EXPECT_TRUE(region.Contains(placement.option, 1e-6));
  EXPECT_GT(placement.cost, 0.0);
  EXPECT_NEAR(placement.cost, Distance(placement.option, p4), 1e-12);
  // The enhanced p4 must improve (weakly) in both attributes -- moving
  // toward the region never decreases competitiveness here.
  EXPECT_GE(placement.option[0], p4[0] - 1e-9);
}

TEST(PlacementTest, OptionAlreadyInsideCostsNothing) {
  const Dataset ds = PaperFigure1Dataset();
  const ToprrResult region = SolveToprr(ds, 3, Interval(0.2, 0.8));
  const Vec p2{0.7, 0.9};
  ASSERT_TRUE(region.Contains(p2));
  const PlacementResult placement = MinimumModification(region, p2);
  ASSERT_TRUE(placement.ok);
  EXPECT_NEAR(placement.cost, 0.0, 1e-7);
  EXPECT_TRUE(ApproxEqual(placement.option, p2, 1e-6));
}

TEST(PlacementTest, BudgetSearchFindsSmallestK) {
  const Dataset ds = PaperFigure1Dataset();
  const Vec p5{0.2, 0.3};
  // With a generous budget the smallest k should go low; with a tiny
  // budget the search fails at k_max already or returns a larger k.
  const auto generous =
      SmallestKWithinBudget(ds, Interval(0.2, 0.8), p5, 2.0, 4);
  ASSERT_TRUE(generous.has_value());
  EXPECT_EQ(generous->k, 1);
  EXPECT_LE(generous->placement.cost, 2.0);

  const auto tight =
      SmallestKWithinBudget(ds, Interval(0.2, 0.8), p5, 0.25, 4);
  if (tight.has_value()) {
    EXPECT_GE(tight->k, generous->k);
    EXPECT_LE(tight->placement.cost, 0.25);
  }

  const auto impossible =
      SmallestKWithinBudget(ds, Interval(0.2, 0.8), p5, 1e-6, 2);
  EXPECT_FALSE(impossible.has_value());
}

TEST(PlacementTest, ConstrainedCreationRespectsExtraHalfspaces) {
  const Dataset ds = PaperFigure1Dataset();
  const ToprrResult region = SolveToprr(ds, 3, Interval(0.2, 0.8));
  // Manufacturing constraint: speed + battery <= 1.3 (paper Sec. 3.1).
  const std::vector<Halfspace> extra = {Halfspace(Vec{1.0, 1.0}, 1.3)};
  const PlacementResult constrained =
      MinimumCostCreationConstrained(region, extra);
  ASSERT_TRUE(constrained.ok);
  EXPECT_TRUE(region.Contains(constrained.option, 1e-6));
  EXPECT_LE(constrained.option.Sum(), 1.3 + 1e-6);
  // Constraints can only make the design as expensive or more.
  const PlacementResult unconstrained = MinimumCostCreation(region);
  EXPECT_GE(constrained.cost, unconstrained.cost - 1e-9);
}

TEST(PlacementTest, ConstrainedModificationInfeasible) {
  const Dataset ds = PaperFigure1Dataset();
  const ToprrResult region = SolveToprr(ds, 3, Interval(0.2, 0.8));
  // An impossible constraint: both attributes below 0.1 cannot be
  // top-ranking here.
  const std::vector<Halfspace> extra = {
      Halfspace(Vec{1.0, 0.0}, 0.1),
      Halfspace(Vec{0.0, 1.0}, 0.1),
  };
  const PlacementResult r =
      MinimumModificationConstrained(region, Vec{0.05, 0.05}, extra);
  EXPECT_FALSE(r.ok);
}

TEST(PlacementTest, BudgetMonotoneCostInK) {
  // Cost of the optimal enhancement grows as k shrinks (paper Sec. 3.1).
  const Dataset ds = GenerateSynthetic(200, 3, Distribution::kIndependent,
                                       300);
  PrefBox box;
  box.lo = Vec{0.3, 0.3};
  box.hi = Vec{0.34, 0.34};
  const Vec current(3, 0.2);
  double prev_cost = -1.0;
  for (int k : {10, 5, 2, 1}) {
    const ToprrResult region = SolveToprr(ds, k, box);
    const PlacementResult placement = MinimumModification(region, current);
    ASSERT_TRUE(placement.ok) << "k=" << k;
    EXPECT_GE(placement.cost, prev_cost - 1e-7) << "k=" << k;
    prev_cost = placement.cost;
  }
}

}  // namespace
}  // namespace toprr
