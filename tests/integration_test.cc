// End-to-end tests across modules: full TopRR solves on synthetic and
// real-like datasets, verified against independent brute-force sampling,
// across methods, dimensions and parameters.
#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/placement.h"
#include "core/toprr.h"
#include "data/generator.h"
#include "pref/pref_space.h"
#include "topk/topk.h"

namespace toprr {
namespace {

// Samples weight vectors in the box (corners + random interior) and checks
// whether o scores >= the k-th score at each.
bool SampledTopRanking(const Dataset& ds, int k, const PrefBox& box,
                       const Vec& o, Rng& rng, int samples = 60) {
  std::vector<Vec> ws = box.Vertices();
  for (int s = 0; s < samples; ++s) {
    Vec x(box.dim());
    for (size_t j = 0; j < box.dim(); ++j) {
      x[j] = rng.Uniform(box.lo[j], box.hi[j]);
    }
    ws.push_back(std::move(x));
  }
  for (const Vec& x : ws) {
    const Vec w = FullWeight(x);
    const TopkResult topk = ComputeTopK(ds, w, k);
    if (Dot(w, o) < topk.KthScore() - 1e-12) return false;
  }
  return true;
}

struct Scenario {
  size_t n;
  size_t d;
  Distribution dist;
  int k;
  double sigma;
  uint64_t seed;
};

class ToprrIntegrationTest : public ::testing::TestWithParam<Scenario> {};

TEST_P(ToprrIntegrationTest, RegionMatchesSampledGroundTruth) {
  const Scenario s = GetParam();
  const Dataset ds = GenerateSynthetic(s.n, s.d, s.dist, s.seed);
  Rng rng(s.seed + 1);
  const PrefBox box = RandomPrefBox(s.d - 1, s.sigma, rng);
  const ToprrResult result = SolveToprr(ds, s.k, box);
  ASSERT_FALSE(result.timed_out);
  ASSERT_GT(result.impact_halfspaces.size(), 0u);

  // (1) Soundness: points our region accepts are top-ranking at every
  // sampled weight vector (including all box corners).
  // (2) Completeness spot check: points we reject must fail at some Vall
  // vertex against the full dataset.
  int accepted = 0;
  int rejected = 0;
  for (int trial = 0; trial < 250; ++trial) {
    Vec o(s.d);
    for (size_t j = 0; j < s.d; ++j) o[j] = rng.Uniform();
    // Margin filter to dodge boundary-noise flakiness.
    double closest = 1e9;
    for (const Halfspace& h : result.impact_halfspaces) {
      closest = std::min(closest,
                         std::abs(h.Violation(o)) / h.normal.Norm());
    }
    if (closest < 1e-6) continue;
    if (result.Contains(o)) {
      ++accepted;
      EXPECT_TRUE(SampledTopRanking(ds, s.k, box, o, rng))
          << "accepted non-top-ranking option " << o.ToString();
    } else {
      ++rejected;
      bool fails_somewhere = false;
      for (const Vec& v : result.vall) {
        const Vec w = FullWeight(v);
        const TopkResult topk = ComputeTopK(ds, w, s.k);
        if (Dot(w, o) < topk.KthScore() - 1e-12) {
          fails_somewhere = true;
          break;
        }
      }
      EXPECT_TRUE(fails_somewhere)
          << "rejected option has no failing Vall witness " << o.ToString();
    }
  }
  // The unit-cube draw should produce both kinds (top corner region is
  // small but nonempty; most of the cube is outside).
  EXPECT_GT(rejected, 0);
  // Explicit inside probe: the top corner.
  EXPECT_TRUE(result.Contains(Vec(s.d, 1.0)));
  (void)accepted;
}

INSTANTIATE_TEST_SUITE_P(
    SyntheticSweep, ToprrIntegrationTest,
    ::testing::Values(
        Scenario{200, 2, Distribution::kIndependent, 1, 0.10, 1},
        Scenario{200, 2, Distribution::kIndependent, 5, 0.10, 2},
        Scenario{500, 2, Distribution::kAnticorrelated, 3, 0.30, 3},
        Scenario{300, 3, Distribution::kIndependent, 5, 0.05, 4},
        Scenario{300, 3, Distribution::kCorrelated, 5, 0.05, 5},
        Scenario{500, 3, Distribution::kAnticorrelated, 10, 0.04, 6},
        Scenario{400, 4, Distribution::kIndependent, 5, 0.04, 7},
        Scenario{400, 4, Distribution::kCorrelated, 10, 0.05, 8},
        Scenario{300, 5, Distribution::kIndependent, 3, 0.03, 9},
        Scenario{250, 2, Distribution::kCorrelated, 10, 0.20, 10}));

TEST(IntegrationTest, MethodsAgreeAcrossScenarios) {
  Rng rng(500);
  for (uint64_t seed = 0; seed < 3; ++seed) {
    const size_t d = 2 + seed;
    const Dataset ds =
        GenerateSynthetic(150, d, Distribution::kIndependent, 600 + seed);
    const PrefBox box = RandomPrefBox(d - 1, 0.05, rng);
    const int k = 4;
    ToprrOptions pac_opts;
    pac_opts.method = ToprrMethod::kPac;
    ToprrOptions tas_opts;
    tas_opts.method = ToprrMethod::kTas;
    const ToprrResult star = SolveToprr(ds, k, box);
    const ToprrResult tas = SolveToprr(ds, k, box, tas_opts);
    const ToprrResult pac = SolveToprr(ds, k, box, pac_opts);
    for (int trial = 0; trial < 500; ++trial) {
      Vec o(d);
      for (size_t j = 0; j < d; ++j) o[j] = rng.Uniform();
      double closest = 1e9;
      for (const Halfspace& h : star.impact_halfspaces) {
        closest = std::min(closest,
                           std::abs(h.Violation(o)) / h.normal.Norm());
      }
      if (closest < 1e-6) continue;
      const bool expected = star.Contains(o);
      EXPECT_EQ(tas.Contains(o), expected);
      EXPECT_EQ(pac.Contains(o), expected);
    }
  }
}

TEST(IntegrationTest, RealLikeDatasetsEndToEnd) {
  Rng rng(700);
  struct RealCase {
    Dataset ds;
    const char* name;
  };
  std::vector<RealCase> cases;
  cases.push_back({GenerateHotelLike(1, 0.01), "hotel"});
  cases.push_back({GenerateHouseLike(1, 0.01), "house"});
  cases.push_back({GenerateNbaLike(1, 0.2), "nba"});
  for (const RealCase& c : cases) {
    const size_t d = c.ds.dim();
    const PrefBox box = RandomPrefBox(d - 1, 0.02, rng);
    const ToprrResult result = SolveToprr(c.ds, 10, box);
    ASSERT_FALSE(result.timed_out) << c.name;
    EXPECT_GT(result.impact_halfspaces.size(), 0u) << c.name;
    EXPECT_TRUE(result.Contains(Vec(d, 1.0))) << c.name;
    // Spot-check soundness at 30 random options.
    int accepted_checked = 0;
    for (int trial = 0; trial < 400 && accepted_checked < 30; ++trial) {
      Vec o(d);
      for (size_t j = 0; j < d; ++j) o[j] = rng.Uniform(0.8, 1.0);
      if (!result.Contains(o)) continue;
      ++accepted_checked;
      EXPECT_TRUE(SampledTopRanking(c.ds, 10, box, o, rng, 20)) << c.name;
    }
  }
}

TEST(IntegrationTest, EnhancementPipelineOnSynthetic) {
  // Full pipeline: solve -> enhance an uncompetitive option -> verify the
  // enhanced version is top-ranking by sampling.
  const Dataset ds = GenerateSynthetic(300, 3, Distribution::kIndependent,
                                       800);
  PrefBox box;
  box.lo = Vec{0.3, 0.3};
  box.hi = Vec{0.35, 0.35};
  const int k = 5;
  const ToprrResult region = SolveToprr(ds, k, box);
  ASSERT_FALSE(region.degenerate);
  const Vec weak(3, 0.3);
  const PlacementResult enhanced = MinimumModification(region, weak);
  ASSERT_TRUE(enhanced.ok);
  Rng rng(801);
  EXPECT_TRUE(SampledTopRanking(ds, k, box, enhanced.option, rng));
  // And the placement is on the boundary (cost > 0 for a weak option).
  EXPECT_GT(enhanced.cost, 0.0);
}

TEST(IntegrationTest, DegenerateCaseOptionAtTopCorner) {
  // An existing option at (1,...,1) forces TopK = 1 somewhere for k=1,
  // making oR degenerate (empty interior) -- must not crash.
  Dataset ds = GenerateSynthetic(50, 3, Distribution::kIndependent, 900);
  ds.Append(Vec(3, 1.0));
  PrefBox box;
  box.lo = Vec{0.3, 0.3};
  box.hi = Vec{0.32, 0.32};
  const ToprrResult result = SolveToprr(ds, 1, box);
  EXPECT_TRUE(result.degenerate);
  // The halfspace description still admits the top corner itself.
  EXPECT_TRUE(result.Contains(Vec(3, 1.0), 1e-9));
}

TEST(IntegrationTest, K1EqualsTopCornerOfK1Sweep) {
  // For k=1 the region is the locus beating every current top-1; verify
  // via direct sampling comparison.
  const Dataset ds = GenerateSynthetic(150, 2, Distribution::kIndependent,
                                       901);
  PrefBox box;
  box.lo = Vec{0.4};
  box.hi = Vec{0.6};
  const ToprrResult result = SolveToprr(ds, 1, box);
  Rng rng(902);
  for (int trial = 0; trial < 300; ++trial) {
    const Vec o{rng.Uniform(0.7, 1.0), rng.Uniform(0.7, 1.0)};
    double closest = 1e9;
    for (const Halfspace& h : result.impact_halfspaces) {
      closest = std::min(closest,
                         std::abs(h.Violation(o)) / h.normal.Norm());
    }
    if (closest < 1e-4) continue;
    bool beats_all = true;
    for (int s = 0; s <= 100; ++s) {
      const double x = 0.4 + 0.2 * s / 100.0;
      const Vec w{x, 1.0 - x};
      const TopkResult top1 = ComputeTopK(ds, w, 1);
      if (Dot(w, o) < top1.KthScore() - 1e-12) {
        beats_all = false;
        break;
      }
    }
    EXPECT_EQ(result.Contains(o), beats_all) << o.ToString();
  }
}

}  // namespace
}  // namespace toprr
