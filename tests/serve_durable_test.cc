// End-to-end tests of serving over a DurableCatalog: acked publishes
// survive a full server restart from the same data directory, a
// reconnecting writer's probe (Publish with the probe flag) is answered
// from the recovered applied-publish table, and the recovered snapshot
// id is bit-identical to the one the original server acked. Raw-socket
// probes exercise the wire path the client's ReconnectAndRestore uses.
// Labeled `serve` through the CMake test glob.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "data/dataset.h"
#include "data/recovery.h"
#include "serve/client.h"
#include "serve/framing.h"
#include "serve/protocol.h"
#include "serve/server.h"

namespace toprr {
namespace serve {
namespace {

std::string MakeTempDir() {
  char tmpl[] = "/tmp/toprr_serve_durable_XXXXXX";
  const char* dir = ::mkdtemp(tmpl);
  EXPECT_NE(dir, nullptr);
  return dir;
}

Dataset MakeBootstrap(size_t n, size_t d) {
  Dataset data(n, d);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < d; ++j) {
      data.At(i, j) = 0.02 * static_cast<double>(i * d + j + 1);
    }
  }
  return data;
}

std::shared_ptr<DurableCatalog> OpenDurable(const std::string& dir,
                                            const Dataset& bootstrap) {
  DurabilityOptions options;
  options.data_dir = dir;
  options.fsync_policy = FsyncPolicy::kOff;  // tests exercise logic, not disks
  options.checkpoint_every = 0;
  std::string error;
  std::shared_ptr<DurableCatalog> durable =
      DurableCatalog::Open(options, &bootstrap, &error);
  EXPECT_NE(durable, nullptr) << error;
  return durable;
}

std::unique_ptr<ToprrServer> StartDurableServer(
    std::shared_ptr<DurableCatalog> durable) {
  ServerConfig config;
  config.host = "127.0.0.1";
  config.port = 0;
  auto server = std::make_unique<ToprrServer>(std::move(durable), config);
  std::string error;
  EXPECT_TRUE(server->Start(&error)) << error;
  return server;
}

// A hand-rolled writer connection: Hello handshake plus raw mutation
// frames, so tests control the idempotency token (the library client
// draws a random one it does not expose).
class RawWriter {
 public:
  explicit RawWriter(int port) { Init(port); }

  // ASSERT_* needs a void function; the constructor delegates here.
  void Init(int port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    ASSERT_GE(fd_, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<uint16_t>(port));
    ASSERT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
    ASSERT_EQ(
        ::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
    stream_ = std::make_unique<FdStream>(fd_);
    ASSERT_TRUE(WriteFrame(*stream_, EncodeHello()));
    std::string reply;
    ASSERT_EQ(ReadFrame(*stream_, &reply), FrameReadStatus::kOk);
    ServerHello hello;
    std::string error;
    ASSERT_TRUE(DecodeServerHello(reply, &hello, &error)) << error;
  }

  ~RawWriter() {
    if (fd_ >= 0) ::close(fd_);
  }

  std::optional<MutationAck> RoundTrip(const std::string& request) {
    if (!WriteFrame(*stream_, request)) return std::nullopt;
    std::string reply;
    if (ReadFrame(*stream_, &reply) != FrameReadStatus::kOk) {
      return std::nullopt;
    }
    MutationAck ack;
    std::string error;
    if (!DecodeMutationAck(reply, &ack, &error)) return std::nullopt;
    return ack;
  }

 private:
  int fd_ = -1;
  std::unique_ptr<FdStream> stream_;
};

TEST(ServeDurableTest, ProbeEncodingRoundTrips) {
  const std::string frame = EncodePublish(77, 3, /*probe=*/true);
  uint64_t token = 0;
  uint64_t id = 0;
  bool probe = false;
  std::string error;
  ASSERT_TRUE(DecodePublish(frame, &token, &id, &probe, &error)) << error;
  EXPECT_EQ(token, 77u);
  EXPECT_EQ(id, 3u);
  EXPECT_TRUE(probe);

  // probe = false stays byte-identical to the pre-probe encoding.
  EXPECT_EQ(EncodePublish(77, 3, /*probe=*/false), EncodePublish(77, 3));
  ASSERT_TRUE(
      DecodePublish(EncodePublish(77, 3), &token, &id, &probe, &error));
  EXPECT_FALSE(probe);

  // Token 0 cannot probe: the encoder collapses to the empty body.
  EXPECT_EQ(EncodePublish(0, 0, /*probe=*/true), EncodePublish());

  // A probe flag without the idempotency flag is a typed decode error.
  std::string patched = EncodePublish(77, 3, /*probe=*/true);
  patched[6] = 0x02;  // flags word low byte: probe only
  EXPECT_FALSE(DecodePublish(patched, &token, &id, &probe, &error));
  EXPECT_NE(error.find("probe"), std::string::npos) << error;
}

TEST(ServeDurableTest, ProbeForUnknownPublishIsFreshNotApplied) {
  const std::string dir = MakeTempDir();
  const Dataset bootstrap = MakeBootstrap(60, 3);
  auto server = StartDurableServer(OpenDurable(dir, bootstrap));

  RawWriter writer(server->port());
  auto ack = writer.RoundTrip(EncodePublish(991, 7, /*probe=*/true));
  ASSERT_TRUE(ack.has_value());
  EXPECT_EQ(ack->status, MutationStatus::kOk) << ack->message;
  EXPECT_FALSE(ack->already_applied);
  EXPECT_EQ(ack->idempotency_token, 991u);
  EXPECT_EQ(ack->publish_id, 7u);
  // A probe never publishes: the served snapshot is still the bootstrap.
  EXPECT_EQ(ack->snapshot_seq, 1u);
  EXPECT_EQ(ack->live_rows, 60u);
  server->Stop();
}

TEST(ServeDurableTest, AckedPublishSurvivesServerRestart) {
  const std::string dir = MakeTempDir();
  const Dataset bootstrap = MakeBootstrap(60, 3);
  constexpr uint64_t kToken = 424242;

  MutationAck original;
  {
    auto server = StartDurableServer(OpenDurable(dir, bootstrap));
    RawWriter writer(server->port());
    auto staged = writer.RoundTrip(
        EncodeStageInsert({Vec{0.91, 0.92, 0.93}, Vec{0.5, 0.6, 0.7}}));
    ASSERT_TRUE(staged.has_value());
    ASSERT_EQ(staged->status, MutationStatus::kOk) << staged->message;
    auto published = writer.RoundTrip(EncodePublish(kToken, 1));
    ASSERT_TRUE(published.has_value());
    ASSERT_EQ(published->status, MutationStatus::kOk) << published->message;
    EXPECT_FALSE(published->already_applied);
    EXPECT_EQ(published->live_rows, 62u);
    original = *published;
    server->Stop();
  }  // The DurableCatalog drops with the server: simulated process exit.

  std::shared_ptr<DurableCatalog> reopened = OpenDurable(dir, bootstrap);
  ASSERT_NE(reopened, nullptr);
  EXPECT_TRUE(reopened->recovery().recovered);
  // Bit-identical recovery: same snapshot id the original server acked.
  EXPECT_EQ(reopened->recovery().snapshot_id, original.snapshot_id);
  EXPECT_EQ(reopened->recovery().snapshot_seq, original.snapshot_seq);

  auto server = StartDurableServer(std::move(reopened));
  RawWriter writer(server->port());

  // The reconnect probe: answered from the recovered applied-publish
  // table without touching the (empty) staged delta.
  auto probe = writer.RoundTrip(EncodePublish(kToken, 1, /*probe=*/true));
  ASSERT_TRUE(probe.has_value());
  EXPECT_EQ(probe->status, MutationStatus::kOk) << probe->message;
  EXPECT_TRUE(probe->already_applied);
  EXPECT_EQ(probe->snapshot_id, original.snapshot_id);
  EXPECT_EQ(probe->snapshot_seq, original.snapshot_seq);
  EXPECT_EQ(probe->live_rows, original.live_rows);

  // A full retried Publish (lost-ack path) also dedupes after restart.
  auto retried = writer.RoundTrip(EncodePublish(kToken, 1));
  ASSERT_TRUE(retried.has_value());
  EXPECT_EQ(retried->status, MutationStatus::kOk) << retried->message;
  EXPECT_TRUE(retried->already_applied);
  EXPECT_EQ(retried->snapshot_seq, original.snapshot_seq);

  // The library client sees the recovered catalog too.
  ToprrClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server->port()))
      << client.last_error();
  auto info = client.CatalogInfo();
  ASSERT_TRUE(info.has_value()) << client.last_error();
  ASSERT_EQ(info->status, MutationStatus::kOk);
  EXPECT_EQ(info->live_rows, 62u);
  EXPECT_EQ(info->snapshot_id, original.snapshot_id);
  server->Stop();
}

TEST(ServeDurableTest, RestartedServerAcceptsNewPublishes) {
  const std::string dir = MakeTempDir();
  const Dataset bootstrap = MakeBootstrap(40, 3);
  uint64_t first_seq = 0;
  {
    auto server = StartDurableServer(OpenDurable(dir, bootstrap));
    RawWriter writer(server->port());
    auto staged = writer.RoundTrip(EncodeStageInsert({Vec{0.8, 0.8, 0.8}}));
    ASSERT_TRUE(staged.has_value());
    ASSERT_EQ(staged->status, MutationStatus::kOk);
    auto published = writer.RoundTrip(EncodePublish(7, 1));
    ASSERT_TRUE(published.has_value());
    ASSERT_EQ(published->status, MutationStatus::kOk);
    first_seq = published->snapshot_seq;
    server->Stop();
  }
  auto server = StartDurableServer(OpenDurable(dir, bootstrap));
  RawWriter writer(server->port());
  // A new publish id from the same writer token advances the catalog.
  auto staged = writer.RoundTrip(EncodeStageInsert({Vec{0.9, 0.9, 0.9}}));
  ASSERT_TRUE(staged.has_value());
  ASSERT_EQ(staged->status, MutationStatus::kOk);
  auto published = writer.RoundTrip(EncodePublish(7, 2));
  ASSERT_TRUE(published.has_value());
  ASSERT_EQ(published->status, MutationStatus::kOk) << published->message;
  EXPECT_FALSE(published->already_applied);
  EXPECT_GT(published->snapshot_seq, first_seq);
  EXPECT_EQ(published->live_rows, 42u);
  server->Stop();
}

}  // namespace
}  // namespace serve
}  // namespace toprr
